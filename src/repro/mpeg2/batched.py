"""Two-phase decode fast path: batch parse -> NumPy reconstruction.

The paper's Section 4 observes that MPEG-2 decoding splits into a
*serial* part — walking the variable-length-coded bitstream — and a
*parallelizable* part — inverse quantization, IDCT, motion
compensation and pixel writes.  :mod:`repro.parallel.macroblock_level`
models that split for the cycle simulation; this module exploits it
for the decoder's own wall-clock speed:

Phase 1 (:func:`parse_slice`) performs **only bit work**: VLC decode,
run/level expansion, DC and motion-vector prediction.  It touches no
pixels; its output is a :class:`SliceParse` — per-macroblock levels,
modes, quantiser scales and absolute half-pel motion vectors, plus the
slice's exact :class:`~repro.mpeg2.counters.WorkCounters`.

Phase 2 (:func:`reconstruct_slices`) turns a picture's parses into
pixels with a handful of vectorized operations: one inverse
quantization over every coded block of the picture (mismatch control
included), **one** :func:`~repro.mpeg2.dct.idct_rounded` call for the
whole picture, motion compensation grouped by (reference, half-pel
phase) so each group is a single strided gather + average, and one
fancy-indexed scatter of all macroblocks into the frame planes.

Bit-exactness
-------------
The fast path is bit-identical to the scalar path by construction:

* phase 1 shares :func:`repro.mpeg2.macroblock.parse_macroblock` and
  the predictor-state transitions verbatim with ``decode_slice``;
* ``scipy.fft``'s IDCT is batch-size invariant (tested), so one call
  per picture equals one call per macroblock;
* half-pel averaging uses the same ``(a+b+1)>>1`` integer arithmetic
  as :func:`repro.mpeg2.motion.predict_block`, applied per phase
  group;
* motion vectors are bounds-checked **at parse time** against the
  reference-plane geometry (the same predicate ``predict_block``
  applies), so a corrupt slice raises the same exception class at the
  same slice, and resilient concealment proceeds identically.

Work counters are derived during parse (each macroblock's
reconstruction cost is a deterministic function of its mode), so the
per-slice counters feeding the paper's cycle-cost model are exactly
those of the scalar decoder — all paper experiments are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.bitstream import BitReader
from repro.mpeg2.constants import PictureType
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.dct import idct_rounded
from repro.mpeg2.frame import Frame
from repro.mpeg2.headers import PictureHeader, SequenceHeader, SliceHeader
from repro.mpeg2.macroblock import (
    _CBP_BLOCK_INDEX,
    _apply_coded_state,
    SliceDecodeError,
    SliceState,
    parse_macroblock,
)
from repro.mpeg2.motion import MotionVector
from repro.mpeg2.quant import dequantize_intra, dequantize_non_intra
from repro.mpeg2.reconstruct import write_macroblocks
from repro.mpeg2.scan import ALTERNATE, ZIGZAG, unscan_block
from repro.mpeg2.tables import MB_ADDRESS_INCREMENT, MBA_ESCAPE, MBA_ESCAPE_VALUE
from repro.mpeg2.vlc import VLCError
from repro.obs.trace import trace_span

#: Pixels of one 4:2:0 macroblock (256 luma + 2 * 64 chroma).
_MB_PIXELS = 256 + 64 + 64

#: Shared all-zero level array for macroblocks with no residual
#: (skipped and MC-only macroblocks).  Read-only so every record may
#: alias it.
_ZERO_LEVELS = np.zeros((6, 64), dtype=np.int64)
_ZERO_LEVELS.setflags(write=False)


# ======================================================================
# phase 1: parse
# ======================================================================
@dataclass
class SliceParse:
    """Phase-1 output for one slice: records + exact work counters.

    Records are parallel lists over the slice's reconstructed
    macroblocks (coded *and* skipped, in address order).  Motion
    vectors are absolute luma half-pel ``(dy, dx)`` tuples or ``None``.
    """

    vertical_position: int
    counters: WorkCounters
    addresses: list[int] = field(default_factory=list)
    intra: list[bool] = field(default_factory=list)
    qscale: list[int] = field(default_factory=list)
    levels: list[np.ndarray] = field(default_factory=list)
    cbp: list[int] = field(default_factory=list)
    mv_fwd: list[tuple[int, int] | None] = field(default_factory=list)
    mv_bwd: list[tuple[int, int] | None] = field(default_factory=list)

    def append(
        self,
        address: int,
        intra: bool,
        qscale: int,
        levels: np.ndarray,
        cbp: int,
        mv_fwd: tuple[int, int] | None,
        mv_bwd: tuple[int, int] | None,
    ) -> None:
        self.addresses.append(address)
        self.intra.append(intra)
        self.qscale.append(qscale)
        self.levels.append(levels)
        self.cbp.append(cbp)
        self.mv_fwd.append(mv_fwd)
        self.mv_bwd.append(mv_bwd)

    def __len__(self) -> int:
        return len(self.addresses)


def _validate_mv(
    mv: MotionVector, mb_row: int, mb_col: int, luma_h: int, luma_w: int
) -> None:
    """Parse-time replica of ``predict_block``'s bounds predicate.

    Checks the luma 16x16 fetch and the (truncated-halved) chroma 8x8
    fetches, including the +1 sample required by half-pel phases.
    Raising :class:`ValueError` here is what keeps corrupt-stream
    behaviour identical to the scalar path, which raises the same
    class from ``predict_block`` during reconstruction.
    """
    dy = mv.dy
    dx = mv.dx
    top = mb_row * 16 + (dy >> 1)
    left = mb_col * 16 + (dx >> 1)
    if (
        top < 0
        or left < 0
        or top + 16 + (dy & 1) > luma_h
        or left + 16 + (dx & 1) > luma_w
    ):
        raise ValueError(
            f"motion vector {mv} displaces macroblock ({mb_row},{mb_col}) "
            f"outside reference plane ({luma_h}, {luma_w})"
        )
    # Chroma vector truncates toward zero (``MotionVector.chroma``),
    # inlined here because this runs once per inter prediction parsed.
    cdy = dy // 2 if dy >= 0 else -((-dy) // 2)
    cdx = dx // 2 if dx >= 0 else -((-dx) // 2)
    ctop = mb_row * 8 + (cdy >> 1)
    cleft = mb_col * 8 + (cdx >> 1)
    if (
        ctop < 0
        or cleft < 0
        or ctop + 8 + (cdy & 1) > luma_h // 2
        or cleft + 8 + (cdx & 1) > luma_w // 2
    ):
        raise ValueError(
            f"motion vector {mv} displaces chroma of macroblock "
            f"({mb_row},{mb_col}) outside reference plane"
        )


def parse_slice(
    payload: bytes,
    vertical_position: int,
    pic: PictureHeader,
    mb_width: int,
    mb_height: int,
    has_fwd: bool,
) -> SliceParse:
    """Phase 1: parse one slice payload into a :class:`SliceParse`.

    Performs exactly the bit work of
    :func:`repro.mpeg2.macroblock.decode_slice` — same syntax walk,
    same predictor-state transitions, same exception classes on
    corrupt input — but touches no pixels.  ``has_fwd`` tells the
    P-picture skipped-macroblock check whether a forward reference
    exists (mirrors the scalar error).
    """
    local = WorkCounters()
    local.bits += len(payload) * 8
    local.headers += 1
    r = BitReader(payload)
    sh = SliceHeader.read(r)
    state = SliceState(qscale_code=sh.quantiser_scale_code)

    row = vertical_position - 1
    if not 0 <= row < mb_height:
        raise SliceDecodeError(
            f"slice vertical position {vertical_position} out of range"
        )
    row_start = row * mb_width
    row_last = row_start + mb_width - 1
    prev_addr = row_start - 1
    luma_h = mb_height * 16
    luma_w = mb_width * 16

    sp = SliceParse(vertical_position=vertical_position, counters=local)
    mba_len = MB_ADDRESS_INCREMENT.max_len
    mba_fast = MB_ADDRESS_INCREMENT.decode_fast

    while prev_addr < row_last:
        increment = 0
        while True:
            # Raw-window VLC decode (own bit cursor): peek, table
            # lookup, consume the matched length.
            sym, length = mba_fast(r.peek_bits(mba_len))
            if length == 0:
                raise VLCError(
                    f"{MB_ADDRESS_INCREMENT.name}: invalid codeword at bit "
                    f"{r.bit_position}"
                )
            if length > r.bits_remaining:
                raise VLCError(
                    f"{MB_ADDRESS_INCREMENT.name}: truncated codeword at end "
                    "of stream"
                )
            r.skip_bits(length)
            local.vlc_symbols += 1
            if sym == MBA_ESCAPE:
                increment += MBA_ESCAPE_VALUE
            else:
                increment += sym
                break
        address = prev_addr + increment
        if address > row_last:
            raise SliceDecodeError(
                f"macroblock address {address} beyond end of row {row}"
            )
        for skipped in range(prev_addr + 1, address):
            _parse_skipped(
                skipped, state, pic.picture_type, local, sp, has_fwd,
                luma_h, luma_w, mb_width,
            )
        _parse_coded(r, address, state, pic, local, sp, luma_h, luma_w, mb_width)
        prev_addr = address

    return sp


def _parse_skipped(
    address: int,
    state: SliceState,
    ptype: PictureType,
    counters: WorkCounters,
    sp: SliceParse,
    has_fwd: bool,
    luma_h: int,
    luma_w: int,
    mb_width: int,
) -> None:
    """Record a skipped macroblock; derive its reconstruction counters."""
    counters.macroblocks += 1
    mb_row, mb_col = divmod(address, mb_width)
    if ptype is PictureType.P:
        if not has_fwd:
            raise SliceDecodeError("P skipped macroblock without forward reference")
        # Co-located copy == zero-MV forward prediction of a zero
        # residual (uint8 copy survives the clip unchanged), so the
        # record shares the MC path; the counters are the copy's.
        counters.pixels += _MB_PIXELS
        counters.mc_pixels += _MB_PIXELS
        sp.append(address, False, state.qscale, _ZERO_LEVELS, 0, (0, 0), None)
        state.reset_pmv()
    elif ptype is PictureType.B:
        if state.prev_motion is None:
            raise SliceDecodeError("B skipped macroblock with no previous mode")
        fwd_on, bwd_on = state.prev_motion
        mvf = state.prev_mv_fwd if fwd_on else None
        mvb = state.prev_mv_bwd if bwd_on else None
        if mvf is None and mvb is None:
            raise ValueError("prediction requested with no motion vectors")
        if mvf is not None:
            _validate_mv(mvf, mb_row, mb_col, luma_h, luma_w)
        if mvb is not None:
            _validate_mv(mvb, mb_row, mb_col, luma_h, luma_w)
        nrefs = (mvf is not None) + (mvb is not None)
        counters.mc_pixels += nrefs * _MB_PIXELS
        counters.mc_macroblocks += 1
        if fwd_on and bwd_on:
            counters.bidir_macroblocks += 1
        counters.pixels += _MB_PIXELS
        sp.append(
            address, False, state.qscale, _ZERO_LEVELS, 0,
            (mvf.dy, mvf.dx) if mvf is not None else None,
            (mvb.dy, mvb.dx) if mvb is not None else None,
        )
    else:
        raise SliceDecodeError("skipped macroblocks are illegal in I-pictures")
    state.reset_dc()


def _parse_coded(
    r: BitReader,
    address: int,
    state: SliceState,
    pic: PictureHeader,
    counters: WorkCounters,
    sp: SliceParse,
    luma_h: int,
    luma_w: int,
    mb_width: int,
) -> None:
    """Parse one coded macroblock; derive its reconstruction counters."""
    mode, mv_fwd, mv_bwd, levels, cbp = parse_macroblock(
        r, state, pic, counters, fast=True
    )
    counters.idct_blocks += len(_CBP_BLOCK_INDEX[cbp])
    if mode.intra:
        counters.pixels += _MB_PIXELS
        sp.append(address, True, state.qscale, levels, cbp, None, None)
    else:
        mb_row, mb_col = divmod(address, mb_width)
        if mv_fwd is None and mv_bwd is None:
            raise ValueError("prediction requested with no motion vectors")
        if mv_fwd is not None:
            _validate_mv(mv_fwd, mb_row, mb_col, luma_h, luma_w)
        if mv_bwd is not None:
            _validate_mv(mv_bwd, mb_row, mb_col, luma_h, luma_w)
        nrefs = (mv_fwd is not None) + (mv_bwd is not None)
        counters.mc_pixels += nrefs * _MB_PIXELS
        counters.mc_macroblocks += 1
        if nrefs == 2:
            counters.bidir_macroblocks += 1
        counters.pixels += _MB_PIXELS
        sp.append(
            address, False, state.qscale, levels, cbp,
            (mv_fwd.dy, mv_fwd.dx) if mv_fwd is not None else None,
            (mv_bwd.dy, mv_bwd.dx) if mv_bwd is not None else None,
        )
    _apply_coded_state(state, mode, mv_fwd, mv_bwd, pic.picture_type)


# ======================================================================
# phase 2: reconstruct
# ======================================================================
def _phase_gather(
    plane: np.ndarray,
    tops: np.ndarray,
    lefts: np.ndarray,
    fys: np.ndarray,
    fxs: np.ndarray,
    bh: int,
    bw: int,
) -> np.ndarray:
    """Half-pel prediction fetch for many blocks, grouped by phase.

    For each of the four half-pel phases ``(fy, fx)`` the matching
    blocks become one strided-view gather over ``plane`` followed by
    the standard rounded average — the same integer arithmetic as
    :func:`repro.mpeg2.motion.predict_block`, applied batchwise.
    """
    out = np.empty((len(tops), bh, bw), dtype=np.int32)
    for fy in (0, 1):
        for fx in (0, 1):
            m = (fys == fy) & (fxs == fx)
            if not m.any():
                continue
            win = sliding_window_view(plane, (bh + fy, bw + fx))
            region = win[tops[m], lefts[m]].astype(np.int32)
            if fy and fx:
                out[m] = (
                    region[:, :-1, :-1]
                    + region[:, :-1, 1:]
                    + region[:, 1:, :-1]
                    + region[:, 1:, 1:]
                    + 2
                ) >> 2
            elif fy:
                out[m] = (region[:, :-1, :] + region[:, 1:, :] + 1) >> 1
            elif fx:
                out[m] = (region[:, :, :-1] + region[:, :, 1:] + 1) >> 1
            else:
                out[m] = region
    return out


def _direction_pred(
    ref: Frame, rows: np.ndarray, cols: np.ndarray, dys: np.ndarray, dxs: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched one-direction prediction: (Y, Cb, Cr) block stacks."""
    # Luma: floor-halve the half-pel vector (matches Python divmod).
    iy = dys // 2
    ix = dxs // 2
    fy = dys & 1
    fx = dxs & 1
    py = _phase_gather(ref.y, rows * 16 + iy, cols * 16 + ix, fy, fx, 16, 16)
    # Chroma vector: luma MV halved truncating toward zero.
    cdy = np.sign(dys) * (np.abs(dys) // 2)
    cdx = np.sign(dxs) * (np.abs(dxs) // 2)
    ciy = cdy // 2
    cix = cdx // 2
    cfy = cdy & 1
    cfx = cdx & 1
    ctop = rows * 8 + ciy
    cleft = cols * 8 + cix
    pcb = _phase_gather(ref.cb, ctop, cleft, cfy, cfx, 8, 8)
    pcr = _phase_gather(ref.cr, ctop, cleft, cfy, cfx, 8, 8)
    return py, pcb, pcr


def _mv_arrays(
    mvs: list[tuple[int, int] | None],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a per-record MV list into (valid, dy, dx) arrays."""
    n = len(mvs)
    valid = np.zeros(n, dtype=bool)
    dy = np.zeros(n, dtype=np.int64)
    dx = np.zeros(n, dtype=np.int64)
    for i, mv in enumerate(mvs):
        if mv is not None:
            valid[i] = True
            dy[i] = mv[0]
            dx[i] = mv[1]
    return valid, dy, dx


def reconstruct_slices(
    slices: list[SliceParse],
    seq: SequenceHeader,
    pic: PictureHeader,
    out: Frame,
    fwd: Frame | None,
    bwd: Frame | None,
) -> None:
    """Phase 2: turn a picture's slice parses into pixels in ``out``.

    All slices of a picture are reconstructed together: one inverse
    quantization and **one** IDCT over every coded block, one gather
    per (reference, plane, half-pel phase) group for motion
    compensation, one clip + scatter per plane.  Slices must cover
    distinct macroblock rows (the decoder drops superseded duplicates
    before calling).
    """
    n = sum(len(s) for s in slices)
    if n == 0:
        return
    addr = np.fromiter(
        (a for s in slices for a in s.addresses), dtype=np.intp, count=n
    )
    intra = np.fromiter(
        (v for s in slices for v in s.intra), dtype=bool, count=n
    )
    qscale = np.fromiter(
        (q for s in slices for q in s.qscale), dtype=np.int64, count=n
    )
    cbp = np.fromiter((c for s in slices for c in s.cbp), dtype=np.int64, count=n)
    levels = np.stack([lv for s in slices for lv in s.levels])
    f_valid, f_dy, f_dx = _mv_arrays([m for s in slices for m in s.mv_fwd])
    b_valid, b_dy, b_dx = _mv_arrays([m for s in slices for m in s.mv_bwd])

    mbw = out.mb_width
    rows = addr // mbw
    cols = addr % mbw

    # ---- inverse quantization + one IDCT call per picture ------------
    blocks = np.zeros((n, 6, 8, 8), dtype=np.int32)
    coded = (cbp[:, None] & (32 >> np.arange(6))) != 0  # (n, 6)
    rec_idx, blk_idx = np.nonzero(coded)
    if rec_idx.size:
        with trace_span("kernel.dequant_idct", cat="kernel", blocks=int(rec_idx.size)):
            order = ALTERNATE if pic.alternate_scan else ZIGZAG
            raster = unscan_block(levels[rec_idx, blk_idx], order)  # (m, 8, 8)
            qs = qscale[rec_idx][:, None, None]
            is_i = intra[rec_idx]
            coeffs = np.empty_like(raster)
            if is_i.any():
                coeffs[is_i] = dequantize_intra(
                    raster[is_i], seq.intra_quant_matrix, qs[is_i]
                )
            ni = ~is_i
            if ni.any():
                coeffs[ni] = dequantize_non_intra(
                    raster[ni], seq.non_intra_quant_matrix, qs[ni]
                )
            blocks[rec_idx, blk_idx] = idct_rounded(coeffs)

    # ---- motion compensation, grouped by (reference, phase) ----------
    pred6 = np.zeros((n, 6, 8, 8), dtype=np.int32)
    if f_valid.any() or b_valid.any():
        with trace_span(
            "kernel.mc",
            cat="kernel",
            macroblocks=int((f_valid | b_valid).sum()),
        ):
            pred_y = np.zeros((n, 16, 16), dtype=np.int32)
            pred_cb = np.zeros((n, 8, 8), dtype=np.int32)
            pred_cr = np.zeros((n, 8, 8), dtype=np.int32)
            fy_ = fcb = fcr = None
            if f_valid.any():
                if fwd is None:
                    raise ValueError(
                        "motion vector present but reference frame missing"
                    )
                py, pcb, pcr = _direction_pred(
                    fwd, rows[f_valid], cols[f_valid], f_dy[f_valid], f_dx[f_valid]
                )
                fy_ = np.zeros((n, 16, 16), dtype=np.int32)
                fcb = np.zeros((n, 8, 8), dtype=np.int32)
                fcr = np.zeros((n, 8, 8), dtype=np.int32)
                fy_[f_valid], fcb[f_valid], fcr[f_valid] = py, pcb, pcr
            by_ = bcb = bcr = None
            if b_valid.any():
                if bwd is None:
                    raise ValueError(
                        "motion vector present but reference frame missing"
                    )
                py, pcb, pcr = _direction_pred(
                    bwd, rows[b_valid], cols[b_valid], b_dy[b_valid], b_dx[b_valid]
                )
                by_ = np.zeros((n, 16, 16), dtype=np.int32)
                bcb = np.zeros((n, 8, 8), dtype=np.int32)
                bcr = np.zeros((n, 8, 8), dtype=np.int32)
                by_[b_valid], bcb[b_valid], bcr[b_valid] = py, pcb, pcr

            only_f = f_valid & ~b_valid
            only_b = b_valid & ~f_valid
            both = f_valid & b_valid
            if only_f.any():
                pred_y[only_f] = fy_[only_f]
                pred_cb[only_f] = fcb[only_f]
                pred_cr[only_f] = fcr[only_f]
            if only_b.any():
                pred_y[only_b] = by_[only_b]
                pred_cb[only_b] = bcb[only_b]
                pred_cr[only_b] = bcr[only_b]
            if both.any():
                # B bidirectional mode: rounded average of the two fetches.
                pred_y[both] = (fy_[both] + by_[both] + 1) >> 1
                pred_cb[both] = (fcb[both] + bcb[both] + 1) >> 1
                pred_cr[both] = (fcr[both] + bcr[both] + 1) >> 1

            pred6[:, 0] = pred_y[:, :8, :8]
            pred6[:, 1] = pred_y[:, :8, 8:]
            pred6[:, 2] = pred_y[:, 8:, :8]
            pred6[:, 3] = pred_y[:, 8:, 8:]
            pred6[:, 4] = pred_cb
            pred6[:, 5] = pred_cr

    # ---- residual add, clip, single scatter into the frame planes ----
    with trace_span("kernel.scatter", cat="kernel", macroblocks=n):
        pixels = np.clip(blocks + pred6, 0, 255).astype(np.uint8)  # (n, 6, 8, 8)
        write_macroblocks(out, rows, cols, pixels)
