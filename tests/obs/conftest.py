"""Tracing is process-global state: every test leaves it disabled."""

from __future__ import annotations

import pytest

from repro.obs.metrics import reset_metrics
from repro.obs.trace import disable_tracing


@pytest.fixture(autouse=True)
def _clean_observability():
    disable_tracing()
    reset_metrics()
    yield
    disable_tracing()
    reset_metrics()
