"""Regenerate the golden-vector conformance corpus.

Run from the repo root::

    PYTHONPATH=src python tests/vectors/generate_vectors.py

Writes ``<name>.m2v`` plus ``digests.json`` next to this script.  Each
vector is a tiny deterministic encode covering a distinct syntax
surface (I/P/B GOPs, multiple GOPs, alternate scan, all-intra, rate
control).  Digests are produced by the *scalar* engine — the
per-macroblock oracle — and cross-checked against the batched engine
and the mp decoder before anything is written, so a corpus that
disagrees with itself can never be committed.

Regenerating is an **intentional act**: if digests change, either the
codec's coded output changed (bump the reason in the commit message)
or something silently drifted (fix the bug instead).  The conformance
suite (``tests/mpeg2/test_golden_vectors.py``) exists to force that
conversation.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.mpeg2.index import build_index
from repro.parallel.mp import MPGopDecoder
from repro.parallel.mp_slice import MPSliceDecoder
from repro.video.synthetic import SyntheticVideo

VECTOR_DIR = os.path.dirname(os.path.abspath(__file__))
DIGEST_PATH = os.path.join(VECTOR_DIR, "digests.json")

#: The corpus: name -> (video parameters, encoder configuration).
#: Keep every stream tiny — the whole corpus must decode three ways in
#: a couple of seconds inside tier-1.
VECTORS: dict[str, dict] = {
    # The headline syntax mix: one closed 13-picture I/P/B GOP.
    "ipb_64x48_gop13": dict(
        width=64, height=48, seed=7, frames=13,
        config=dict(gop_size=13, qscale_code=3),
    ),
    # Two closed GOPs: exercises GOP boundaries and display merge.
    "two_gop_48x32": dict(
        width=48, height=32, seed=11, frames=8,
        config=dict(gop_size=4, qscale_code=3),
    ),
    # MPEG-2 alternate coefficient scan end-to-end.
    "altscan_48x32_gop7": dict(
        width=48, height=32, seed=21, frames=7,
        config=dict(gop_size=7, qscale_code=4, alternate_scan=True),
    ),
    # All-intra: two single-picture GOPs, smallest legal frame.
    "intra_16x16_gop1": dict(
        width=16, height=16, seed=2, frames=2,
        config=dict(gop_size=1, qscale_code=2),
    ),
    # Rate-controlled encode: adaptive quantiser path.
    "rc_64x48_gop4": dict(
        width=64, height=48, seed=5, frames=8,
        config=dict(gop_size=4, qscale_code=6, target_bits_per_picture=4000),
    ),
    # Non-mod-16 display size: coded-size padding + display crop.
    "pad_40x24_gop4": dict(
        width=40, height=24, seed=13, frames=4,
        config=dict(gop_size=4, qscale_code=3),
    ),
}


# ----------------------------------------------------------------------
# negative corpus: byte surgery on a committed base vector
# ----------------------------------------------------------------------
#
# MPEG-2 slices are self-contained (predictors reset at each slice
# header) and each one names its own macroblock row, so two stream
# malformations are *legal to index* yet stress the decoders' slice
# bookkeeping:
#
# * ``shuffle`` — reverse the wire order of one picture's slices.  A
#   correct decoder is scan-order independent: output must be
#   bit-identical to the base stream on every path.
# * ``duplicate`` — repeat one slice's wire bytes back to back.  The
#   second decode of the same row must win (it writes the same pixels)
#   and the extra slice's work must be counted exactly once per copy,
#   identically by the sequential oracle and every parallel decoder.


def _slice_chunk(data: bytes, sl) -> bytes:
    """Wire bytes of one slice including its 4-byte start code."""
    return data[sl.payload_start - 4 : sl.payload_end]


def shuffle_slices(data: bytes, gop: int, pic: int) -> bytes:
    """Reverse the slice order inside one picture (whole wire chunks)."""
    slices = build_index(data).gops[gop].pictures[pic].slices
    assert len(slices) >= 2, "need at least two slices to shuffle"
    lo = slices[0].payload_start - 4
    hi = slices[-1].payload_end
    chunks = [_slice_chunk(data, sl) for sl in slices]
    assert b"".join(chunks) == data[lo:hi], "slices are not contiguous"
    return data[:lo] + b"".join(reversed(chunks)) + data[hi:]


def duplicate_slice(data: bytes, gop: int, pic: int, sl: int) -> bytes:
    """Insert a byte-identical copy of one slice right after itself."""
    s = build_index(data).gops[gop].pictures[pic].slices[sl]
    chunk = _slice_chunk(data, s)
    return data[: s.payload_end] + chunk + data[s.payload_end :]


def drop_slice(data: bytes, gop: int, pic: int, sl: int) -> bytes:
    """Remove one slice's wire bytes (start code + payload) entirely.

    The streaming-loss malformation: the slice never arrives, so the
    resilient decoders must *conceal* its macroblock row rather than
    parse-and-fail.  Indices refer to the stream as passed in —
    apply multiple drops to the same picture in descending slice
    order.
    """
    s = build_index(data).gops[gop].pictures[pic].slices[sl]
    return data[: s.payload_start - 4] + data[s.payload_end :]


#: name -> (base vector, surgery callable).  Both derive from the
#: headline I/P/B vector and target picture 2 (coding order) — a
#: P-picture, so the malformed rows also feed later predictions.
NEGATIVES: dict[str, dict] = {
    "neg_shuffled_slices": dict(
        base="ipb_64x48_gop13",
        surgery=lambda data: shuffle_slices(data, gop=0, pic=2),
        note="slices of picture 2 in reverse wire order",
    ),
    "neg_duplicated_slice": dict(
        base="ipb_64x48_gop13",
        surgery=lambda data: duplicate_slice(data, gop=0, pic=2, sl=1),
        note="slice 1 of picture 2 repeated back to back",
    ),
}


# ----------------------------------------------------------------------
# concealment corpus: dropped slices, pinned *concealed* output
# ----------------------------------------------------------------------
#
# Each entry drops whole slices off the wire (the packet-loss
# malformation the streaming edge must survive) and pins the digests
# of the ``resilient=True`` decode — temporal concealment (co-located
# rows of the forward reference) where a reference exists, spatial
# row-copy where none does.  Every decode path must conceal
# bit-identically; ``tests/mpeg2/test_conceal_parity.py`` re-asserts
# this from the committed files on every run.
#
# ``drops`` are ``(gop, pic, slice)`` triples applied in order, each
# against the stream produced by the previous drop (so same-picture
# drops are listed in descending slice order).

CONCEAL: dict[str, dict] = {
    "conceal_p_temporal": dict(
        base="ipb_64x48_gop13",
        drops=((0, 2, 1),),
        note=(
            "slice 1 of P-picture 2 dropped; row concealed from the "
            "co-located row of the forward reference (temporal)"
        ),
    ),
    "conceal_i_spatial": dict(
        base="ipb_64x48_gop13",
        drops=((0, 0, 2), (0, 0, 1)),
        note=(
            "slices 1+2 of the opening I-picture dropped; no reference "
            "exists, so both rows conceal as a spatial row-copy "
            "cascade from row 0"
        ),
    ),
    "conceal_b_temporal": dict(
        base="two_gop_48x32",
        drops=((0, 2, 0),),
        note=(
            "slice 0 of a B-picture dropped; temporal concealment, and "
            "the damage cannot propagate (B is never a reference)"
        ),
    ),
    "conceal_lost_picture": dict(
        base="two_gop_48x32",
        drops=((0, 1, 1), (0, 1, 0)),
        note=(
            "every slice of P-picture 1 dropped; the whole picture is "
            "concealed from the I-picture (zero-slice settle path)"
        ),
    ),
}


def conceal_reference(data: bytes) -> tuple[list[str], WorkCounters]:
    """Resilient scalar-oracle digests + counters for a lossy stream."""
    counters = WorkCounters()
    frames = SequenceDecoder(data, engine="scalar", resilient=True).decode_all(
        counters
    )
    return [f.digest() for f in frames], counters


# ----------------------------------------------------------------------
# promoted fuzz mutants
# ----------------------------------------------------------------------
#
# The differential fuzz sweep (tests/serve/test_fuzz_containment.py)
# found two real bugs; the mutants that triggered them are promoted
# here so the corpus pins the fixes forever, independent of the sweep.
# Bytes are *re-derived* from the seeded recipe (seed 1234, the
# ``mutate`` function, BASE_ORDER) — the mutant index below is the
# mutant's index in every fuzz run, past and future.
#
# Two flavours: a promoted mutant either still *decodes* (entry pins
# ``frame_digests`` like the other negatives) or is *rejected* (entry
# pins ``error``, the exception class every decode path must raise).

FUZZ_PROMOTED: dict[str, dict] = {
    "neg_fuzz013_trunc_zero_slice": dict(
        mutant=13,
        note=(
            "fuzz mutant 013: truncated pad_40x24_gop4 leaving a "
            "zero-slice picture; decodes (blank frame) identically on "
            "every path — crashed the slice-parallel merger (KeyError) "
            "before the fix"
        ),
    ),
    "neg_fuzz027_splice_bitstream_error": dict(
        mutant=27,
        note=(
            "fuzz mutant 027: spliced intra_16x16_gop1; every path "
            "must reject with BitstreamError — the fast block decoder "
            "raised it without importing it (NameError) before the fix"
        ),
    ),
    "neg_fuzz010_trunc_vlc_error": dict(
        mutant=10,
        note=(
            "fuzz mutant 010: truncated ipb_64x48_gop13; every path "
            "must reject with VLCError — pins the other unimported "
            "exception-name site in the fast block decoder"
        ),
    ),
}


def promote_fuzz_mutants() -> dict[str, dict]:
    """Re-derive the promoted mutants and cross-check all five paths.

    Imported lazily (the fuzz module reads the committed vectors, so
    the corpus files must be rewritten first) and verified with the
    sweep's own ``run_path`` verdict machinery: serve included.
    """
    sys.path.insert(0, os.path.dirname(os.path.dirname(VECTOR_DIR)))
    from tests.serve import test_fuzz_containment as fuzz

    want = max(spec["mutant"] for spec in FUZZ_PROMOTED.values()) + 1
    mutants = fuzz.generate_mutants(want)
    out: dict[str, dict] = {}
    for name, spec in FUZZ_PROMOTED.items():
        idx, base, op, data = mutants[spec["mutant"]]
        verdicts = {p: fuzz.run_path(fn, data) for p, fn in fuzz.PATHS.items()}
        kinds = {v[0] for v in verdicts.values()}
        assert len(kinds) == 1, (name, verdicts)
        entry = {
            "file": f"{name}.m2v",
            "base": base,
            "note": spec["note"],
            "fuzz": {"seed": fuzz.FUZZ_SEED, "index": idx, "op": op},
            "stream_sha256": hashlib.sha256(data).hexdigest(),
            "stream_bytes": len(data),
        }
        if kinds == {"ok"}:
            _, digests, counters = verdicts["scalar"]
            for p, (_, d, c) in verdicts.items():
                assert d == digests and c == counters, (name, p)
            # Real worker pools must agree with the in-process paths.
            w2 = MPSliceDecoder(data, workers=2, mode="improved").decode_all()
            assert [f.digest() for f in w2] == digests, name
            entry["frame_digests"] = digests
            flavour = f"decodable, {len(digests)} pictures"
        else:
            classes = {v[1] for v in verdicts.values()}
            assert len(classes) == 1, (name, verdicts)
            for label, mk in (
                ("mp-slice-w2", lambda d: MPSliceDecoder(
                    d, workers=2, mode="improved")),
                ("mp-gop-w2", lambda d: MPGopDecoder(d, workers=2)),
            ):
                try:
                    mk(data).decode_all()
                except Exception as exc:
                    assert type(exc).__name__ in classes, (name, label, exc)
                else:
                    raise AssertionError(f"{name}: {label} decoded a reject")
            entry["error"] = classes.pop()
            flavour = f"rejected with {entry['error']}"

        with open(os.path.join(VECTOR_DIR, entry["file"]), "wb") as fh:
            fh.write(data)
        out[name] = entry
        print(f"{name}: {len(data)} bytes ({flavour})")
    return out


# ----------------------------------------------------------------------
# trick-play corpus: random-access digest sets over the positive corpus
# ----------------------------------------------------------------------
#
# Every trick-play mode is a *selection* over the linear decode —
# closed GOPs guarantee no coded state crosses an entry point, so each
# emitted picture must be bit-identical to the same display index of
# the committed linear digests.  The generator enforces exactly that
# before pinning anything, on the scalar + batched engines and the mp
# path, so a trick digest that disagrees with its stream's linear
# digests can never be committed.

#: Target-free modes pinned for every stream; ``seek`` entries are
#: derived per stream from :func:`repro.access.default_seek_targets`.
TRICK_MODES_PINNED = ("reverse", "ff2", "ff4", "iframes")


def trick_corpus(built: dict[str, bytes]) -> dict[str, dict]:
    from repro.access import default_seek_targets, trick_decode, trick_decode_mp

    out: dict[str, dict] = {}
    for name, data in built.items():
        index = build_index(data)
        oracle = SequenceDecoder(data, engine="scalar").decode_all()
        oracle_digests = [f.digest() for f in oracle]
        targets = default_seek_targets(index)
        runs = [(f"seek@{t}", "seek", t) for t in targets]
        runs += [(m, m, 0) for m in TRICK_MODES_PINNED]
        modes: dict[str, dict] = {}
        for label, mode, target in runs:
            pairs = trick_decode(
                data, mode, target=target, index=index, engine="scalar"
            )
            dis = [d for d, _ in pairs]
            digs = [f.digest() for _, f in pairs]
            assert digs == [oracle_digests[d] for d in dis], (name, label)
            for check in (
                lambda: trick_decode(
                    data, mode, target=target, index=index, engine="batched"
                ),
                lambda: trick_decode_mp(
                    data, mode, target=target, index=index, workers=0
                ),
            ):
                got = check()
                assert [d for d, _ in got] == dis, (name, label)
                assert [f.digest() for _, f in got] == digs, (name, label)
            modes[label] = {"display_indices": dis, "frame_digests": digs}
        # One real worker-pool cross-check per stream (the in-process
        # path above already covered every mode).
        label, mode, target = runs[0]
        pool = trick_decode_mp(data, mode, target=target, workers=2)
        assert [f.digest() for _, f in pool] == modes[label]["frame_digests"], name
        out[name] = {"seek_targets": targets, "modes": modes}
        print(
            f"{name}: trick-play {len(modes)} modes "
            f"(seek targets {targets})"
        )
    return out


def open_gop_negative(built: dict[str, bytes]) -> dict:
    """Clear a GOP's closed_gop flag; random access must refuse it.

    The GOP-parallel decomposition (and therefore the whole codebase's
    bit-exactness story) rests on the paper's closed-GOP assumption,
    so *every* GOP-level path rejects the stream with ``DecodeError``
    — and the access layer must refuse seek/join into the open GOP
    with ``SeekError`` rather than risk a non-bit-exact entry.
    """
    from repro.access import SeekError, trick_decode, trick_decode_mp
    from repro.mpeg2.decoder import DecodeError
    from repro.mpeg2.index import StreamIndexError

    base = built["two_gop_48x32"]
    index = build_index(base)
    gop = index.gops[1]
    mutated = bytearray(base)
    # closed_gop is bit 6 of the byte at offset 7 inside the GOP
    # header (start code + 25 bits of timecode before it).
    mutated[gop.start_offset + 7] &= ~0x40
    data = bytes(mutated)
    midx = build_index(data)
    assert not midx.gops[1].closed_gop, "surgery failed to clear the flag"
    target = midx.gop_display_base(1)

    # The linear GOP-level decode refuses open GOPs outright.
    try:
        SequenceDecoder(data, engine="scalar").decode_all()
    except DecodeError:
        pass
    else:
        raise AssertionError("linear decode accepted an open GOP")

    for describe, attempt in (
        ("scalar", lambda: trick_decode(data, "seek", target=target,
                                        engine="scalar")),
        ("batched", lambda: trick_decode(data, "seek", target=target,
                                         engine="batched")),
        ("mp-0", lambda: trick_decode_mp(data, "seek", target=target,
                                         workers=0)),
    ):
        try:
            attempt()
        except SeekError:
            pass
        else:
            raise AssertionError(f"open-GOP seek decoded on {describe}")
    # join_point must refuse too: no closed GOP at/after the target.
    try:
        midx.join_point(1)
    except StreamIndexError:
        pass
    else:
        raise AssertionError("join_point accepted an open GOP")

    name = "neg_open_gop_seek"
    with open(os.path.join(VECTOR_DIR, f"{name}.m2v"), "wb") as fh:
        fh.write(data)
    print(f"{name}: {len(data)} bytes (seek into open GOP refused)")
    return {
        name: {
            "file": f"{name}.m2v",
            "base": "two_gop_48x32",
            "note": (
                "GOP 1's closed_gop flag cleared; GOP-level decode "
                "rejects with DecodeError (paper assumption), and "
                "seek/join into GOP 1 must refuse (SeekError / "
                "StreamIndexError) on every path — an unprovable "
                "entry point is not an entry point"
            ),
            "stream_sha256": hashlib.sha256(data).hexdigest(),
            "stream_bytes": len(data),
            "error": "DecodeError",
            "trick_error": "SeekError",
            "seek_target": target,
        }
    }


def negative_reference(data: bytes) -> tuple[list[str], WorkCounters]:
    """Scalar-oracle digests + counters for a negative stream."""
    counters = WorkCounters()
    frames = SequenceDecoder(data, engine="scalar").decode_all(counters)
    return [f.digest() for f in frames], counters


def _engine_run(
    data: bytes, engine: str, resilient: bool = False
) -> tuple[list[str], WorkCounters]:
    counters = WorkCounters()
    frames = SequenceDecoder(
        data, engine=engine, resilient=resilient
    ).decode_all(counters)
    return [f.digest() for f in frames], counters


def _gop_run(
    data: bytes, workers: int, resilient: bool = False
) -> tuple[list[str], WorkCounters]:
    counters = WorkCounters()
    frames = MPGopDecoder(
        data, workers=workers, resilient=resilient
    ).decode_all(counters)
    return [f.digest() for f in frames], counters


def _slice_run(
    data: bytes, workers: int, mode: str, resilient: bool = False
) -> tuple[list[str], WorkCounters]:
    counters = WorkCounters()
    frames = MPSliceDecoder(
        data, workers=workers, mode=mode, resilient=resilient
    ).decode_all(counters)
    return [f.digest() for f in frames], counters


def build_vector(name: str, spec: dict) -> bytes:
    video = SyntheticVideo(
        width=spec["width"], height=spec["height"], seed=spec["seed"]
    )
    frames = video.frames(spec["frames"])
    return encode_sequence(frames, EncoderConfig(**spec["config"]))


def digests_for(data: bytes, **decoder_kwargs) -> list[str]:
    frames = SequenceDecoder(data, **decoder_kwargs).decode_all()
    return [f.digest() for f in frames]


def main() -> int:
    corpus: dict[str, dict] = {}
    built: dict[str, bytes] = {}
    for name, spec in VECTORS.items():
        data = build_vector(name, spec)
        built[name] = data
        golden = digests_for(data, engine="scalar")
        # Cross-check every decode path before committing anything.
        assert digests_for(data, engine="batched") == golden, name
        mp_frames = MPGopDecoder(data, workers=0).decode_all()
        assert [f.digest() for f in mp_frames] == golden, name
        for mode in ("simple", "improved"):
            sl_frames = MPSliceDecoder(data, workers=0, mode=mode).decode_all()
            assert [f.digest() for f in sl_frames] == golden, (name, mode)

        path = os.path.join(VECTOR_DIR, f"{name}.m2v")
        with open(path, "wb") as fh:
            fh.write(data)
        corpus[name] = {
            "file": f"{name}.m2v",
            "stream_sha256": hashlib.sha256(data).hexdigest(),
            "stream_bytes": len(data),
            "width": spec["width"],
            "height": spec["height"],
            "pictures": spec["frames"],
            "frame_digests": golden,
        }
        print(f"{name}: {len(data)} bytes, {len(golden)} pictures")

    negative: dict[str, dict] = {}
    for name, spec in NEGATIVES.items():
        base = built[spec["base"]]
        data = spec["surgery"](base)
        assert data != base, name
        golden, counters = negative_reference(data)
        # Every decode path must agree on the malformed stream too —
        # same pixels *and* same work counters.
        for describe, decode in (
            ("batched", lambda d: _engine_run(d, "batched")),
            ("mp-slice-0-simple", lambda d: _slice_run(d, 0, "simple")),
            ("mp-slice-0-improved", lambda d: _slice_run(d, 0, "improved")),
            ("mp-slice-2-improved", lambda d: _slice_run(d, 2, "improved")),
        ):
            digests, got = decode(data)
            assert digests == golden, (name, describe)
            assert got == counters, (name, describe)

        path = os.path.join(VECTOR_DIR, f"{name}.m2v")
        with open(path, "wb") as fh:
            fh.write(data)
        negative[name] = {
            "file": f"{name}.m2v",
            "base": spec["base"],
            "note": spec["note"],
            "stream_sha256": hashlib.sha256(data).hexdigest(),
            "stream_bytes": len(data),
            "frame_digests": golden,
        }
        print(f"{name}: {len(data)} bytes ({spec['note']})")

    conceal: dict[str, dict] = {}
    for name, spec in CONCEAL.items():
        data = built[spec["base"]]
        for gop, pic, sl in spec["drops"]:
            data = drop_slice(data, gop, pic, sl)
        assert data != built[spec["base"]], name
        golden, counters = conceal_reference(data)
        assert counters.concealed_slices >= len(spec["drops"]), name
        # Concealment must be bit-identical on every decode path —
        # pixels *and* work counters (concealed_slices included).
        for describe, decode in (
            (
                "batched",
                lambda d: _engine_run(d, "batched", resilient=True),
            ),
            (
                "mp-gop-0",
                lambda d: _gop_run(d, 0, resilient=True),
            ),
            (
                "mp-slice-0-simple",
                lambda d: _slice_run(d, 0, "simple", resilient=True),
            ),
            (
                "mp-slice-0-improved",
                lambda d: _slice_run(d, 0, "improved", resilient=True),
            ),
            (
                "mp-slice-2-improved",
                lambda d: _slice_run(d, 2, "improved", resilient=True),
            ),
        ):
            digests, got = decode(data)
            assert digests == golden, (name, describe)
            assert got == counters, (name, describe)

        path = os.path.join(VECTOR_DIR, f"{name}.m2v")
        with open(path, "wb") as fh:
            fh.write(data)
        conceal[name] = {
            "file": f"{name}.m2v",
            "base": spec["base"],
            "note": spec["note"],
            "drops": [list(d) for d in spec["drops"]],
            "stream_sha256": hashlib.sha256(data).hexdigest(),
            "stream_bytes": len(data),
            "concealed_slices": counters.concealed_slices,
            "frame_digests": golden,
        }
        print(
            f"{name}: {len(data)} bytes, "
            f"{counters.concealed_slices} concealed ({spec['note'][:40]}...)"
        )

    # Trick-play digest sets (selections over the linear decode) and
    # the open-GOP random-access refusal vector.
    trickplay = trick_corpus(built)
    negative.update(open_gop_negative(built))

    # Promoted fuzz mutants ride in the same negative corpus (after
    # the base vector files above are on disk — the recipe reads them).
    negative.update(promote_fuzz_mutants())

    with open(DIGEST_PATH, "w") as fh:
        json.dump(
            {
                "format": 1,
                "digest": (
                    "sha256 over display-rect planes, each prefixed "
                    "'{rows}x{cols}:' (Frame.digest)"
                ),
                "streams": corpus,
                "negative": negative,
                "conceal": conceal,
                "trickplay": trickplay,
            },
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")
    print(f"wrote {DIGEST_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
