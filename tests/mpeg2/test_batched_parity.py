"""Bit-exact parity of the batched decode engine against the scalar oracle.

The two-phase fast path (:mod:`repro.mpeg2.batched`) must be
indistinguishable from the per-macroblock scalar decoder in every
observable way: decoded pixels, per-slice and aggregate work counters,
and error behaviour (both strict raising and ``resilient=True``
concealment).  Every assertion here is an exact equality — no PSNR
thresholds, no sampling.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import ENGINES, SequenceDecoder
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.parallel.profile import profile_stream
from repro.video.streams import build_stream, paper_stream_matrix
from repro.video.synthetic import SyntheticVideo

from tests.mpeg2.test_resilience import corrupt_slice


def _decode(data: bytes, engine: str, resilient: bool = False):
    dec = SequenceDecoder(data, resilient=resilient, engine=engine)
    counters = WorkCounters()
    frames = dec.decode_all(counters)
    return frames, counters


def assert_frames_identical(frames_a, frames_b):
    assert len(frames_a) == len(frames_b)
    for i, (a, b) in enumerate(zip(frames_a, frames_b)):
        for plane in ("y", "cb", "cr"):
            pa, pb = getattr(a, plane), getattr(b, plane)
            assert np.array_equal(pa, pb), (
                f"frame {i} plane {plane}: engines diverge "
                f"({np.count_nonzero(pa != pb)} pixels differ)"
            )


def assert_stream_parity(data: bytes):
    """Full cross-engine check: frames and aggregate counters equal."""
    frames_s, counters_s = _decode(data, "scalar")
    frames_b, counters_b = _decode(data, "batched")
    assert_frames_identical(frames_s, frames_b)
    assert counters_s == counters_b


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("scalar", "batched")

    def test_unknown_engine_rejected(self, small_stream):
        with pytest.raises(ValueError, match="engine"):
            SequenceDecoder(small_stream, engine="bogus")

    def test_default_engine_is_batched(self, small_stream):
        assert SequenceDecoder(small_stream).engine == "batched"


class TestBasicParity:
    """I/P/B parity on the shared session streams."""

    def test_small_stream(self, small_stream):
        assert_stream_parity(small_stream)

    def test_two_gop_stream(self, two_gop_stream):
        assert_stream_parity(two_gop_stream)

    def test_medium_stream(self, medium_stream):
        assert_stream_parity(medium_stream)

    def test_per_slice_counters_identical(self, small_stream):
        """Slice-granular counters feed the paper's simulations; the
        batched engine must report the exact same per-slice work."""
        prof_s, frames_s = profile_stream(
            small_stream, keep_frames=True, engine="scalar"
        )
        prof_b, frames_b = profile_stream(
            small_stream, keep_frames=True, engine="batched"
        )
        assert_frames_identical(frames_s, frames_b)
        for gs, gb in zip(prof_s.gops, prof_b.gops):
            for ps, pb in zip(gs.pictures, gb.pictures):
                assert len(ps.slices) == len(pb.slices)
                for ss, sb in zip(ps.slices, pb.slices):
                    assert ss.vertical_position == sb.vertical_position
                    assert ss.counters == sb.counters


class TestResolutionMatrix:
    """All four Table 1 resolutions (scaled 1/4 to keep the suite fast)."""

    @pytest.mark.parametrize(
        "spec",
        paper_stream_matrix(pictures=4, resolution_divisor=4, gop_sizes=(4,)),
        ids=lambda s: s.name,
    )
    def test_table1_resolution_parity(self, spec):
        assert_stream_parity(build_stream(spec))


class TestAlternateScan:
    def test_alternate_scan_parity(self):
        frames = SyntheticVideo(width=48, height=32, seed=21).frames(7)
        data = encode_sequence(
            frames,
            EncoderConfig(gop_size=7, qscale_code=4, alternate_scan=True),
        )
        assert_stream_parity(data)


class TestResilientParity:
    """Concealment must conceal the same rows with the same pixels."""

    def _assert_resilient_parity(self, data: bytes):
        frames_s, counters_s = _decode(data, "scalar", resilient=True)
        frames_b, counters_b = _decode(data, "batched", resilient=True)
        assert counters_s.concealed_slices >= 1
        assert_frames_identical(frames_s, frames_b)
        assert counters_s == counters_b

    def test_corrupt_p_slice(self, small_stream):
        self._assert_resilient_parity(
            corrupt_slice(small_stream, gop=0, pic=4, sl=1)
        )

    def test_corrupt_first_i_slice(self, small_stream):
        # No forward reference: concealment falls back to grey fill.
        self._assert_resilient_parity(
            corrupt_slice(small_stream, gop=0, pic=0, sl=0)
        )

    def test_corrupt_b_slice(self, small_stream):
        self._assert_resilient_parity(
            corrupt_slice(small_stream, gop=0, pic=2, sl=2)
        )

    def test_multiple_corruptions(self, small_stream):
        data = corrupt_slice(small_stream, gop=0, pic=4, sl=1)
        data = corrupt_slice(data, gop=0, pic=1, sl=0)
        data = corrupt_slice(data, gop=0, pic=6, sl=2)
        self._assert_resilient_parity(data)

    def test_strict_batched_raises(self, small_stream):
        data = corrupt_slice(small_stream, gop=0, pic=4, sl=1)
        with pytest.raises(Exception):
            _decode(data, "batched")


class TestPropertyParity:
    """Parity over randomly-seeded encodes (random content and motion)."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        qscale=st.integers(min_value=2, max_value=16),
    )
    def test_random_streams(self, seed: int, qscale: int):
        frames = SyntheticVideo(width=32, height=32, seed=seed).frames(7)
        data = encode_sequence(
            frames, EncoderConfig(gop_size=7, ip_distance=3, qscale_code=qscale)
        )
        assert_stream_parity(data)
