"""Cache simulator: exact behaviour on crafted traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CacheConfig, CacheStats, simulate
from repro.cache.trace import AddressSpaceLayout, MemoryTrace


def make_trace(addrs, writes=None, procs=None, processors=1):
    addrs = np.asarray(addrs, dtype=np.int64)
    writes = (
        np.zeros(len(addrs), dtype=bool)
        if writes is None
        else np.asarray(writes, dtype=bool)
    )
    procs = (
        np.zeros(len(addrs), dtype=np.int16)
        if procs is None
        else np.asarray(procs, dtype=np.int16)
    )
    layout = AddressSpaceLayout(
        coded_width=16, coded_height=16, stream_bytes=64, processors=processors
    )
    return MemoryTrace(
        addr=addrs, write=writes, proc=procs, processors=processors, layout=layout
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(line_size=48)
        with pytest.raises(ValueError):
            CacheConfig(line_size=64, capacity=100)
        with pytest.raises(ValueError):
            CacheConfig(line_size=64, capacity=1024, associativity=17)

    def test_derived_geometry(self):
        cfg = CacheConfig(line_size=64, capacity=8192, associativity=2)
        assert cfg.total_lines == 128
        assert cfg.n_sets == 64
        fa = CacheConfig(line_size=64, capacity=8192, associativity=0)
        assert fa.ways == 128
        assert fa.n_sets == 1


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        trace = make_trace([0, 0, 0])
        total, _ = simulate(trace, CacheConfig(line_size=64, capacity=1024))
        assert total.reads == 3
        assert total.read_misses == 1
        assert total.cold_misses == 1

    def test_same_line_different_words_hit(self):
        trace = make_trace([0, 4, 8, 60])
        total, _ = simulate(trace, CacheConfig(line_size=64, capacity=1024))
        assert total.read_misses == 1

    def test_different_lines_all_cold(self):
        trace = make_trace([0, 64, 128, 192])
        total, _ = simulate(trace, CacheConfig(line_size=64, capacity=1024))
        assert total.read_misses == 4
        assert total.cold_misses == 4

    def test_line_size_merges_neighbours(self):
        addrs = [0, 64]  # one 128B line, two 64B lines
        small, _ = simulate(make_trace(addrs), CacheConfig(line_size=64, capacity=1024))
        large, _ = simulate(make_trace(addrs), CacheConfig(line_size=128, capacity=1024))
        assert small.read_misses == 2
        assert large.read_misses == 1

    def test_lru_capacity_eviction(self):
        # 2-line fully-assoc cache; touch 3 lines cyclically: always miss.
        cfg = CacheConfig(line_size=64, capacity=128, associativity=0)
        trace = make_trace([0, 64, 128, 0, 64, 128])
        total, _ = simulate(trace, cfg)
        assert total.read_misses == 6
        assert total.cold_misses == 3
        assert total.capacity_conflict_misses == 3

    def test_lru_keeps_recent(self):
        cfg = CacheConfig(line_size=64, capacity=128, associativity=0)
        # A B A C A : B evicted by C (A refreshed), final A hits.
        trace = make_trace([0, 64, 0, 128, 0])
        total, _ = simulate(trace, cfg)
        assert total.read_misses == 3  # A, B, C cold; both re-A hits

    def test_direct_mapped_conflict(self):
        # Two lines mapping to the same set of a DM cache thrash.
        cfg = CacheConfig(line_size=64, capacity=256, associativity=1)  # 4 sets
        a, b = 0, 4 * 64  # same set index 0
        trace = make_trace([a, b, a, b])
        total, _ = simulate(trace, cfg)
        assert total.read_misses == 4
        # Fully associative cache of the same size has no conflicts.
        fa = CacheConfig(line_size=64, capacity=256, associativity=0)
        total_fa, _ = simulate(make_trace([a, b, a, b]), fa)
        assert total_fa.read_misses == 2

    def test_write_counted_as_write_miss(self):
        trace = make_trace([0, 0], writes=[True, False])
        total, _ = simulate(trace, CacheConfig(line_size=64, capacity=1024))
        assert total.write_misses == 1
        assert total.read_misses == 0
        assert total.writes == 1
        assert total.reads == 1

    def test_empty_trace(self):
        total, per = simulate(make_trace([]), CacheConfig())
        assert total.refs == 0
        assert total.miss_rate == 0.0


class TestCoherence:
    def test_write_invalidates_other_cache(self):
        # p0 reads line, p1 writes it, p0 re-reads: coherence miss.
        trace = make_trace(
            [0, 0, 0],
            writes=[False, True, False],
            procs=[0, 1, 0],
            processors=2,
        )
        total, per = simulate(trace, CacheConfig(line_size=64, capacity=1024))
        assert per[0].coherence_misses == 1
        assert per[0].read_misses == 2  # cold + coherence
        assert per[1].write_misses == 1

    def test_reads_do_not_invalidate(self):
        trace = make_trace(
            [0, 0, 0], writes=[False, False, False], procs=[0, 1, 0], processors=2
        )
        total, per = simulate(trace, CacheConfig(line_size=64, capacity=1024))
        assert per[0].read_misses == 1
        assert total.coherence_misses == 0

    def test_miss_classes_partition_misses(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 16, size=4000) * 4
        writes = rng.random(4000) < 0.3
        procs = rng.integers(0, 4, size=4000)
        trace = make_trace(addrs, writes, procs, processors=4)
        total, per = simulate(
            trace, CacheConfig(line_size=64, capacity=4096, associativity=2)
        )
        assert total.misses == (
            total.cold_misses
            + total.coherence_misses
            + total.capacity_conflict_misses
        )
        assert total.refs == 4000
        agg = CacheStats()
        for st in per:
            agg.merge(st)
        assert agg.misses == total.misses


class TestRunCollapsing:
    def test_collapsed_runs_count_all_refs(self):
        trace = make_trace([0, 4, 8, 0, 64, 64])
        total, _ = simulate(trace, CacheConfig(line_size=64, capacity=1024))
        assert total.refs == 6
        assert total.read_misses == 2  # line 0 cold, line 1 cold

    def test_interleaved_procs_not_collapsed(self):
        # Same line, alternating procs: each proc misses once (cold).
        trace = make_trace(
            [0] * 6, procs=[0, 1, 0, 1, 0, 1], processors=2
        )
        total, per = simulate(trace, CacheConfig(line_size=64, capacity=1024))
        assert per[0].read_misses == 1
        assert per[1].read_misses == 1
