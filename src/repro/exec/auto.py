"""Online auto-granularity: choose grain + engine, re-pick from obs.

The paper's central experimental result is that the *decomposition
grain* decides whether software MPEG-2 decoding meets real time: GOP
grain parallelizes with almost no synchronization but needs many GOPs
in flight; slice grain exposes parallelism inside a single picture but
pays barrier / reference-publish waits.  The repo historically made
that choice a per-run flag; :class:`AutoGranularity` makes it a
per-stream *decision* with an online correction loop:

1. **Up-front** (:meth:`AutoGranularity.decide`): estimate each
   candidate ``(grain, engine)``'s cost from the bandwidth profiler's
   per-stream numbers (:class:`~repro.analysis.bandwidth.
   BandwidthProfile` — bytes to decode, picture mix, GOP count) and a
   calibrated :class:`CostModel`, then pick the cheapest.  The rejected
   runner-up and its estimate ride along in the :class:`Decision` so
   the ``exec.plan`` trace span can show *what was not chosen and why*.
2. **Online** (:meth:`AutoGranularity.repick`): at GOP boundaries the
   executor summarizes the last window's observed stage timings into
   an :class:`ObsSnapshot` (worker idle, barrier + ref-publish stalls,
   queue depth) and the controller re-picks: sustained worker idleness
   at GOP grain means the stream is not wide enough in GOPs — go
   finer; heavy synchronization share at slice grain means the fine
   grain is paying more in waits than it buys — go coarser.  Both
   functions are **pure**: same profile / snapshot in, same decision
   out (pinned by a Hypothesis determinism property).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.bandwidth import BandwidthProfile
from repro.obs.stalls import (
    REASON_BARRIER,
    REASON_QUEUE_GET,
    REASON_REF_PUBLISH,
    StallTable,
)

GRAINS = ("gop", "slice")
ENGINES_CHOICES = ("scalar", "batched")

#: Re-pick hysteresis: a correction needs a clear signal, not noise.
#: Idle fraction above this at GOP grain reads as "not enough GOPs in
#: flight"; sync fraction above this at slice grain reads as "the fine
#: grain's barriers cost more than its width buys".
IDLE_REPICK_FRAC = 0.25
SYNC_REPICK_FRAC = 0.25


@dataclass(frozen=True)
class ObsSnapshot:
    """A window's observed stage timings, summarized for the controller.

    Everything the re-pick rule reads, and nothing else — so decisions
    are a pure function of this record (the determinism property) and
    a snapshot can be built equally from a live run or a test fixture.
    """

    wall_s: float
    pictures: int
    queue_depth: int = 0
    worker_idle_s: float = 0.0
    barrier_s: float = 0.0
    ref_publish_s: float = 0.0

    @classmethod
    def from_run(
        cls,
        stalls: StallTable,
        wall_s: float,
        pictures: int,
        queue_depth: int = 0,
    ) -> "ObsSnapshot":
        """Summarize a planner's post-run stall table.

        Worker idleness is the ``queue.get`` time booked by
        ``worker-*`` waiters (the between-task gaps the chunk body
        attributes); barrier / ref-publish totals come straight from
        the canonical reasons.
        """
        idle = 0.0
        for waiter, reasons in stalls.snapshot().items():
            if waiter.startswith("worker-"):
                cell = reasons.get(REASON_QUEUE_GET)
                if cell is not None:
                    idle += cell["total"]
        return cls(
            wall_s=wall_s,
            pictures=pictures,
            queue_depth=queue_depth,
            worker_idle_s=idle,
            barrier_s=stalls.total(REASON_BARRIER),
            ref_publish_s=stalls.total(REASON_REF_PUBLISH),
        )

    @property
    def idle_frac(self) -> float:
        return self.worker_idle_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def sync_frac(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return (self.barrier_s + self.ref_publish_s) / self.wall_s


@dataclass(frozen=True)
class Decision:
    """One planning decision, with the rejected runner-up attached.

    The estimates are model costs (seconds of work, not a promise of
    wall time); ``reason`` is a short human-readable tag that lands in
    the ``exec.plan`` trace span and the decision metrics.
    """

    grain: str
    engine: str
    est_cost: float
    alt_grain: str
    alt_engine: str
    alt_cost: float
    reason: str


@dataclass(frozen=True)
class CostModel:
    """Calibrated per-stream cost estimates for each (grain, engine).

    Deliberately coarse — the controller needs *ordering*, not
    absolute seconds.  Decode work scales with coded bytes
    (entropy-decode dominated, so wire bytes are the right size
    proxy); the scalar engine pays roughly 4x the batched engine's
    per-byte cost (the measured gap between the per-block and the
    whole-picture vectorized paths).  Each grain then adds its own
    overheads: GOP grain a per-GOP dispatch message and the
    sequence-prefix re-parse, slice grain a per-picture process
    message plus worker spawn cost (the slice path spawns fresh
    workers per run) and the barrier/ref-publish synchronization the
    paper charges the fine grain with.
    """

    #: Seconds per coded byte, batched engine (calibrated on the
    #: pure-python decoder; absolute scale cancels in comparisons).
    batched_s_per_byte: float = 2.0e-6
    #: The scalar engine's multiplier over batched.
    scalar_multiplier: float = 4.0
    #: Per-GOP overhead at GOP grain: one dispatch message + decoding
    #: the repeated sequence-header prefix.
    gop_task_s: float = 2.0e-3
    #: Per-picture overhead at slice grain: queue messages + slice
    #: bookkeeping.
    slice_task_s: float = 4.0e-3
    #: Per-worker spawn cost at slice grain (fresh processes per run,
    #: unlike the GOP path's persistent pool).
    slice_spawn_s: float = 0.25
    #: Synchronization surcharge at slice grain: fraction of decode
    #: work spent in barrier / ref-publish waits (Table 3's sync share
    #: for the fine grain).
    slice_sync_frac: float = 0.15

    def engine_cost(self, stream_bytes: int, engine: str) -> float:
        per_byte = self.batched_s_per_byte
        if engine == "scalar":
            per_byte *= self.scalar_multiplier
        return stream_bytes * per_byte

    def estimate(
        self,
        profile: BandwidthProfile,
        grain: str,
        engine: str,
        workers: int,
    ) -> float:
        """Model seconds for one (grain, engine) on ``workers`` cores.

        Work divides by the *effective* parallel width: GOP grain
        cannot use more workers than the stream has GOPs, slice grain
        is bounded by pictures in flight (B-pictures between two
        published references — modelled as the per-GOP picture count).
        """
        decode = self.engine_cost(profile.stream_bytes, engine)
        gops = max(len(profile.gops), 1)
        pictures = max(profile.pictures, 1)
        lanes = max(workers, 1)
        if grain == "gop":
            width = min(lanes, gops)
            return decode / width + self.gop_task_s * gops
        if grain == "slice":
            width = min(lanes, max(pictures // gops, 1))
            sync = decode * self.slice_sync_frac if lanes > 1 else 0.0
            return (
                decode / width
                + sync
                + self.slice_task_s * pictures
                + self.slice_spawn_s * min(lanes, workers or 0)
            )
        raise ValueError(f"unknown grain {grain!r}")


@dataclass(frozen=True)
class AutoGranularity:
    """The controller: pure decision functions over profile + obs.

    ``engine_hint`` / ``grain_hint`` pin one axis while the other
    stays automatic (the CLI's ``--grain auto --engine batched``
    shape).
    """

    profile: BandwidthProfile
    workers: int
    model: CostModel = field(default_factory=CostModel)
    grain_hint: str | None = None
    engine_hint: str | None = None

    def _candidates(self) -> list[tuple[str, str]]:
        grains = (self.grain_hint,) if self.grain_hint else GRAINS
        engines = (self.engine_hint,) if self.engine_hint else ENGINES_CHOICES
        return [(g, e) for g in grains for e in engines]

    def decide(self) -> Decision:
        """Up-front pick: cheapest modelled (grain, engine) candidate.

        Ties break toward the earlier candidate in (gop, slice) x
        (scalar, batched) order — deterministic by construction.
        """
        scored = [
            (self.model.estimate(self.profile, g, e, self.workers), g, e)
            for g, e in self._candidates()
        ]
        scored.sort(key=lambda t: t[0])
        best_cost, best_g, best_e = scored[0]
        if len(scored) > 1:
            alt_cost, alt_g, alt_e = scored[1]
        else:
            alt_cost, alt_g, alt_e = best_cost, best_g, best_e
        return Decision(
            grain=best_g,
            engine=best_e,
            est_cost=best_cost,
            alt_grain=alt_g,
            alt_engine=alt_e,
            alt_cost=alt_cost,
            reason="profile",
        )

    def repick(self, prev: Decision, snap: ObsSnapshot) -> Decision:
        """Online correction at a GOP boundary — pure in (prev, snap).

        * GOP grain + sustained worker idleness: the stream is not
          wide enough in GOPs for the pool — go finer (slice), if the
          model thinks slice is even viable here and the grain is not
          pinned.
        * Slice grain + heavy barrier/ref-publish share: the fine
          grain pays more in synchronization than its width buys — go
          coarser (gop).
        * Otherwise: hold steady.  No signal is never treated as a
          reason to churn.
        """
        if self.grain_hint is not None:
            return Decision(
                grain=prev.grain,
                engine=prev.engine,
                est_cost=prev.est_cost,
                alt_grain=prev.alt_grain,
                alt_engine=prev.alt_engine,
                alt_cost=prev.alt_cost,
                reason="pinned",
            )
        if prev.grain == "gop" and snap.idle_frac > IDLE_REPICK_FRAC:
            est = self.model.estimate(
                self.profile, "slice", prev.engine, self.workers
            )
            return Decision(
                grain="slice",
                engine=prev.engine,
                est_cost=est,
                alt_grain="gop",
                alt_engine=prev.engine,
                alt_cost=prev.est_cost,
                reason="worker-idle",
            )
        if prev.grain == "slice" and snap.sync_frac > SYNC_REPICK_FRAC:
            est = self.model.estimate(
                self.profile, "gop", prev.engine, self.workers
            )
            return Decision(
                grain="gop",
                engine=prev.engine,
                est_cost=est,
                alt_grain="slice",
                alt_engine=prev.engine,
                alt_cost=prev.est_cost,
                reason="sync-bound",
            )
        return Decision(
            grain=prev.grain,
            engine=prev.engine,
            est_cost=prev.est_cost,
            alt_grain=prev.alt_grain,
            alt_engine=prev.alt_engine,
            alt_cost=prev.alt_cost,
            reason="steady",
        )
