"""DecodeService integration: parity, admission, degradation, faults.

The serve layer must be a *transparent* multiplexer: a session decoded
through the service produces the same pixels and work counters as the
sequential scalar oracle, in display order, whatever else is sharing
the pool.  On top of that transparency these tests pin the service's
own behaviours — admission control, weighted fairness end to end,
deadline-driven degradation (with an injected clock, so overload is
deterministic), per-task crash/hang recovery, and the containment
guarantee that a poisoned stream fails alone.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.serve import DecodeService, DegradePolicy, SessionStatus
from repro.video.synthetic import SyntheticVideo
from tests.mpeg2.test_batched_parity import assert_frames_identical
from tests.parallel.test_mp_fault_injection import assert_no_stray_children


def collect_frames(svc: DecodeService, names):
    """Attach per-session sinks; returns name -> {display_index: frame}."""
    got: dict[str, dict[int, object]] = {n: {} for n in names}

    def sink_for(n):
        def sink(display_index, frame):
            assert display_index not in got[n], "display index emitted twice"
            got[n][display_index] = frame
        return sink

    return got, {n: sink_for(n) for n in names}


def assert_session_parity(golden, name, sess, frames_by_index):
    ref_frames, ref_counters = golden.scalar(name.split("#")[0])
    assert sess.status is SessionStatus.DONE
    assert sess.counters == ref_counters
    emitted = [frames_by_index[i] for i in sorted(frames_by_index)]
    assert sorted(frames_by_index) == list(range(len(ref_frames)))
    assert_frames_identical(ref_frames, emitted)


@pytest.fixture(scope="module")
def many_gop_stream():
    """24 pictures in 6 closed 4-picture GOPs (degradation fodder)."""
    video = SyntheticVideo(width=48, height=32, seed=19).frames(24)
    return encode_sequence(video, EncoderConfig(gop_size=4, qscale_code=3))


class TestParityInProcess:
    """workers=0: the full corpus through the service, bit for bit."""

    def test_every_golden_vector_matches_scalar(self, golden, no_shm_leak):
        names = golden.names
        svc = DecodeService(workers=0, capacity=len(names))
        got, sinks = collect_frames(svc, names)
        for name in names:
            svc.submit(name, golden.data(name), on_frame=sinks[name])
        report = svc.run()
        assert report["status_counts"] == {"done": len(names)}
        for name in names:
            assert_session_parity(golden, name, svc.sessions[name], got[name])

    def test_negative_corpus_matches_scalar(self, golden):
        # The committed malformed vectors, all in one service run: the
        # decodable ones must reproduce the oracle's decree exactly
        # like the mp paths, and the rejected ones (promoted fuzz
        # mutants) must fail *contained* — their sessions end FAILED
        # with the pinned error class while every other session in the
        # same pool still completes bit-exact.
        names = sorted(golden.negative)
        svc = DecodeService(workers=0, capacity=len(names))
        got, sinks = collect_frames(svc, names)
        for name in names:
            svc.submit(name, golden.data(name), on_frame=sinks[name])
        svc.run()
        for name in names:
            sess = svc.sessions[name]
            entry = golden.negative[name]
            if "error" in entry:
                assert sess.status is SessionStatus.FAILED
                assert sess.error is not None
                assert sess.error["type"] == entry["error"]
            else:
                assert sess.status is SessionStatus.DONE
                digests = [got[name][i].digest() for i in sorted(got[name])]
                assert digests == entry["frame_digests"]

    def test_weighted_sessions_all_complete(self, golden):
        svc = DecodeService(workers=0, capacity=3)
        name = "two_gop_48x32"
        for i, w in enumerate((0.5, 1.0, 4.0)):
            svc.submit(f"s{i}", golden.data(name), weight=w)
        report = svc.run()
        assert report["status_counts"] == {"done": 3}
        # WFQ: the heavy session's virtual time never exceeds a light
        # session's by more than one task's work at the end.
        assert svc.scheduler.vtime("s2") <= svc.scheduler.vtime("s0") + 8


class TestParityWorkers:
    """Real processes: same transparency, plus cleanup postconditions."""

    def test_three_sessions_two_workers(self, golden, no_shm_leak, watchdog):
        names = ["ipb_64x48_gop13", "two_gop_48x32", "altscan_48x32_gop7"]
        svc = DecodeService(workers=2, capacity=len(names))
        got, sinks = collect_frames(svc, names)
        for name in names:
            svc.submit(name, golden.data(name), on_frame=sinks[name])
        report = svc.run()
        assert report["status_counts"] == {"done": len(names)}
        for name in names:
            assert_session_parity(golden, name, svc.sessions[name], got[name])
        assert report["pool_bytes"] > 0
        assert_no_stray_children()

    def test_duplicate_stream_sessions(self, golden, no_shm_leak, watchdog):
        # The same bytes submitted twice are two independent sessions.
        name = "two_gop_48x32"
        svc = DecodeService(workers=2, capacity=2)
        got, sinks = collect_frames(svc, [f"{name}#1", f"{name}#2"])
        for sid in got:
            svc.submit(sid, golden.data(name), on_frame=sinks[sid])
        svc.run()
        for sid in got:
            assert_session_parity(golden, name, svc.sessions[sid], got[sid])
        assert_no_stray_children()


class TestAdmission:
    def test_capacity_queue_reject(self, golden):
        svc = DecodeService(workers=0, capacity=1, max_queue=1)
        data = golden.data("two_gop_48x32")
        a = svc.submit("a", data)
        b = svc.submit("b", data)
        c = svc.submit("c", data)
        assert a.status is SessionStatus.ACTIVE
        assert b.status is SessionStatus.QUEUED
        assert c.status is SessionStatus.REJECTED
        report = svc.run()
        # The queued session is promoted into the freed slot and
        # completes; the rejected one never decodes a picture.
        assert a.status is SessionStatus.DONE
        assert b.status is SessionStatus.DONE
        assert c.status is SessionStatus.REJECTED
        assert c.emitted_pictures == 0
        assert report["status_counts"] == {"done": 2, "rejected": 1}

    def test_admission_wait_recorded(self, golden):
        svc = DecodeService(workers=0, capacity=1, max_queue=2)
        data = golden.data("intra_16x16_gop1")
        for sid in ("a", "b", "c"):
            svc.submit(sid, data)
        svc.run()
        from repro.obs.stalls import REASON_ADMISSION

        by_reason = svc.last_stalls.by_reason()
        assert REASON_ADMISSION in by_reason

    def test_estimate_capacity_fallbacks(self, tmp_path):
        from repro.serve import estimate_capacity

        # No pacing: bounded by worker slots.
        assert estimate_capacity(4, None) == 4
        assert estimate_capacity(0, None) == 1
        # Unreadable benchmark: same fallback.
        assert estimate_capacity(4, 30.0, str(tmp_path / "nope.json")) == 4
        # A readable benchmark drives the estimate.
        import json

        bench = {
            "headline": "h",
            "streams": {"h": {"sequential_pictures_per_sec": 300.0}},
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench))
        # 2 workers * 300 p/s * 0.7 safety / 30 fps = 14 sessions.
        assert estimate_capacity(2, 30.0, str(path)) == 14


class TestDegradation:
    """Deadline misses shed B tasks, then GOPs — deterministically.

    The injected clock advances a full second per reading, so with any
    real fps every picture is hopelessly late: the degradation ladder
    must climb.  Workers=0 keeps scheduling deterministic.
    """

    @staticmethod
    def _slow_clock(step=1.0):
        t = [0.0]

        def clock():
            t[0] += step
            return t[0]

        return clock

    def test_drop_b_sheds_only_b_pictures(self, golden):
        name = "ipb_64x48_gop13"
        svc = DecodeService(
            workers=0, capacity=1, fps=30.0, clock=self._slow_clock()
        )
        dropped_indices = []
        def sink(display_index, frame):
            if frame is None:
                dropped_indices.append(display_index)
        sess = svc.submit(name, golden.data(name), on_frame=sink)
        svc.run()
        assert sess.status is SessionStatus.DONE
        assert sess.degrade.max_level >= 1
        assert sess.dropped_pictures > 0
        assert sess.emitted_pictures + sess.dropped_pictures == (
            sess.picture_count
        )
        # Every shed picture must be a non-reference B picture.
        by_display = {p.display_index: p for p in sess.plans}
        for di in dropped_indices:
            assert not by_display[di].is_reference

    def test_skip_gop_under_sustained_overload(self, many_gop_stream):
        policy = DegradePolicy(
            drop_b_after=1, skip_gop_after=2, recover_after=100
        )
        svc = DecodeService(
            workers=0, capacity=1, fps=30.0, policy=policy,
            clock=self._slow_clock(),
        )
        sess = svc.submit("s", many_gop_stream)
        svc.run()
        assert sess.status is SessionStatus.DONE
        assert sess.degrade.max_level == 2
        assert sess.skipped_gops >= 1
        assert sess.emitted_pictures + sess.dropped_pictures == (
            sess.picture_count
        )

    def test_no_degradation_when_on_time(self, golden):
        # Default clock, tiny stream: nothing should be shed.
        name = "two_gop_48x32"
        svc = DecodeService(workers=0, capacity=1, fps=5.0, preroll_pictures=8)
        sess = svc.submit(name, golden.data(name))
        svc.run()
        assert sess.dropped_pictures == 0
        assert sess.degrade.max_level == 0

    def test_degrade_stall_reasons_recorded(self, golden):
        from repro.obs.stalls import REASON_DEGRADE_DROP_B

        name = "ipb_64x48_gop13"
        svc = DecodeService(
            workers=0, capacity=1, fps=30.0, clock=self._slow_clock()
        )
        svc.submit(name, golden.data(name))
        svc.run()
        assert REASON_DEGRADE_DROP_B in svc.last_stalls.by_reason()

    def test_unpaced_service_never_degrades(self, golden):
        name = "ipb_64x48_gop13"
        svc = DecodeService(workers=0, capacity=1, fps=None)
        sess = svc.submit(name, golden.data(name))
        svc.run()
        assert sess.dropped_pictures == 0
        assert not sess.pacer.enabled


class TestRobustness:
    def test_crash_retried_on_replacement_worker(
        self, golden, no_shm_leak, watchdog
    ):
        data = golden.data("two_gop_48x32")
        svc = DecodeService(
            workers=2, capacity=2, max_task_retries=2,
            _crash_task=(0, "a", ("ref", 0)),
        )
        a = svc.submit("a", data)
        b = svc.submit("b", data)
        svc.run()
        assert a.status is SessionStatus.DONE
        assert b.status is SessionStatus.DONE
        assert svc.excluded[("a", ("ref", 0))] == {0}
        assert_no_stray_children()

    def test_hang_reaped_by_task_timeout(self, golden, no_shm_leak, watchdog):
        data = golden.data("two_gop_48x32")
        svc = DecodeService(
            workers=2, capacity=2, task_timeout_s=2.0, max_task_retries=2,
            _hang_task=(0, "a", ("ref", 0)),
        )
        a = svc.submit("a", data)
        b = svc.submit("b", data)
        svc.run()
        assert a.status is SessionStatus.DONE
        assert b.status is SessionStatus.DONE
        assert_no_stray_children()

    def test_retry_budget_exhaustion_fails_only_that_session(
        self, golden, no_shm_leak, watchdog
    ):
        data = golden.data("two_gop_48x32")
        svc = DecodeService(
            workers=1, capacity=2, max_task_retries=0,
            _crash_task=(0, "a", ("ref", 0)),
        )
        a = svc.submit("a", data)
        b = svc.submit("b", data)
        svc.run()
        assert a.status is SessionStatus.FAILED
        assert "retry budget" in a.error["message"]
        assert b.status is SessionStatus.DONE
        assert_no_stray_children()

    def test_scan_poison_contained(self, golden, no_shm_leak):
        svc = DecodeService(workers=0, capacity=2)
        bad = svc.submit("bad", b"\x00\x00\x01\xb3not mpeg")
        good = svc.submit("good", golden.data("two_gop_48x32"))
        assert bad.status is SessionStatus.FAILED
        report = svc.run()
        assert good.status is SessionStatus.DONE
        assert report["status_counts"] == {"done": 1, "failed": 1}
        assert bad.error["type"]

    def test_worker_side_decode_error_contained(
        self, golden, no_shm_leak, watchdog
    ):
        # Slice-level corruption that survives the scan but fails in a
        # worker mid-decode: its session fails, the neighbour finishes.
        good = golden.data("two_gop_48x32")
        bad = bytearray(good)
        idx = good.find(b"\x00\x00\x01\x01", 200)
        bad[idx + 8:idx + 12] = b"\xff\xff\xff\xff"
        svc = DecodeService(workers=2, capacity=2)
        sb = svc.submit("bad", bytes(bad))
        sg = svc.submit("good", good)
        svc.run()
        assert sb.status is SessionStatus.FAILED
        assert sg.status is SessionStatus.DONE
        assert_no_stray_children()

    def test_resilient_session_conceals_instead(self, golden):
        good = golden.data("two_gop_48x32")
        bad = bytearray(good)
        idx = good.find(b"\x00\x00\x01\x01", 200)
        bad[idx + 8:idx + 12] = b"\xff\xff\xff\xff"
        from repro.mpeg2.counters import WorkCounters
        from repro.mpeg2.decoder import SequenceDecoder

        ref_counters = WorkCounters()
        SequenceDecoder(bytes(bad), resilient=True).decode_all(ref_counters)
        svc = DecodeService(workers=0, capacity=1, resilient=True)
        sess = svc.submit("r", bytes(bad))
        svc.run()
        assert sess.status is SessionStatus.DONE
        assert sess.counters == ref_counters
        assert sess.counters.concealed_slices >= 1


class TestServiceApi:
    def test_run_once_only(self, golden):
        svc = DecodeService(workers=0, capacity=1)
        svc.submit("a", golden.data("intra_16x16_gop1"))
        svc.run()
        with pytest.raises(RuntimeError, match="once"):
            svc.run()
        with pytest.raises(RuntimeError, match="after run"):
            svc.submit("b", golden.data("intra_16x16_gop1"))

    def test_duplicate_name_rejected(self, golden):
        svc = DecodeService(workers=0, capacity=2)
        svc.submit("a", golden.data("intra_16x16_gop1"))
        with pytest.raises(ValueError, match="duplicate"):
            svc.submit("a", golden.data("intra_16x16_gop1"))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DecodeService(workers=-1)
        with pytest.raises(ValueError):
            DecodeService(task_timeout_s=0)
        with pytest.raises(ValueError):
            DecodeService(max_task_retries=-1)

    def test_report_shape(self, golden):
        svc = DecodeService(workers=0, capacity=1, fps=1000.0)
        svc.submit("a", golden.data("two_gop_48x32"))
        report = svc.run()
        assert set(report) >= {
            "workers", "capacity", "sessions", "status_counts",
            "deadline", "stalls", "wall_seconds",
        }
        sess = svc.sessions["a"]
        # At 1000 fps real-clock misses may shed pictures; accounting
        # must still close: every picture emitted or deliberately shed.
        assert report["deadline"]["emitted"] == sess.emitted_pictures
        assert sess.emitted_pictures + sess.dropped_pictures == 8
        assert 0.0 <= report["deadline"]["miss_fraction"] <= 1.0

    def test_serve_streams_convenience(self, golden):
        from repro.serve.service import serve_streams

        report = serve_streams(
            [("a", golden.data("intra_16x16_gop1"))], workers=0, capacity=1
        )
        assert report["status_counts"] == {"done": 1}

    def test_no_multiprocessing_children_after_inprocess(self, golden):
        # Healthy persistent GOP-pool workers (possibly forked by other
        # suites in the same process) are exempt: they outlive runs by
        # design.  An in-process serve must add nothing beyond them.
        from repro.parallel.mp import persistent_worker_pids

        svc = DecodeService(workers=0, capacity=1)
        svc.submit("a", golden.data("intra_16x16_gop1"))
        svc.run()
        strays = [
            p
            for p in multiprocessing.active_children()
            if p.pid not in persistent_worker_pids()
        ]
        assert strays == []
