"""Real-time playback (the paper's title claim), as a deadline test.

The throughput tables show average rates; real-time playback is a
*deadline* property: every picture must reach the display by its
30 pics/s slot.  This extension experiment paces the display process
and finds the smallest worker count with zero late pictures per
resolution and decoder — quantifying the paper's conclusion that
"we can achieve real time decoding for reasonable sized pictures
(352x240, 704x480) on small-scale shared memory multiprocessors"
while 1408x960 is out of reach for this machine generation.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.parallel import SliceMode

from benchmarks.conftest import PAPER_CASES

RATES = (30.0, 25.0)
MAX_WORKERS = 14
PICTURES = 390
#: A quarter-second player preroll absorbs the pipeline-fill transient.
PREROLL = 8


def _min_workers(run) -> tuple[int | None, dict[int, int]]:
    late_by_p: dict[int, int] = {}
    for workers in range(1, MAX_WORKERS + 1):
        result = run(workers)
        late_by_p[workers] = result.late_pictures
        if result.met_realtime:
            return workers, late_by_p
    return None, late_by_p


def test_realtime_deadlines(benchmark, env, record):
    def sweep():
        out = {}
        for res in PAPER_CASES:
            profile = env.profile(res, 13, pictures=PICTURES)
            for rate in RATES:
                out[(res, "GOP", rate)] = _min_workers(
                    lambda p: env.run_gop(
                        profile, p, display_rate_hz=rate,
                        display_preroll_pictures=PREROLL,
                    )
                )
                out[(res, "improved slice", rate)] = _min_workers(
                    lambda p: env.run_slice(
                        profile, p, SliceMode.IMPROVED, display_rate_hz=rate,
                        display_preroll_pictures=PREROLL,
                    )
                )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = TextTable(
        ["case", "rate", "workers for 0 late pics", "late pics at P=14"],
        title=(
            f"Real-time playback deadlines ({PICTURES} pictures, "
            f"{PREROLL}-picture preroll)"
        ),
    )
    for (res, version, rate), (needed, late_by_p) in results.items():
        table.add_row(
            f"{res}/{version}",
            f"{rate:.0f}/s",
            needed if needed is not None else f">{MAX_WORKERS}",
            late_by_p[max(late_by_p)],
        )
    record(table.render())

    # The paper's conclusion mapped to deadlines: real-time at 352x240,
    # (near-)real-time at 704x480 — its 26.6-27.4 pics/s covers a 25/s
    # display — and 1408x960 out of reach on this machine generation.
    #
    # Note the structural finding: the GOP decoder misses deadlines at
    # 352x240 even at P=14 with a small preroll, despite having the
    # throughput — each GOP is decoded serially by one worker, so a
    # picture can trail its slot by up to a serial-GOP decode time
    # (~2.4 s). See test_realtime_required_preroll below.
    if "352x240" in PAPER_CASES:
        needed, _ = results[("352x240", "improved slice", 30.0)]
        assert needed is not None and needed <= 14
    if "704x480" in PAPER_CASES:
        needed25, _ = results[("704x480", "improved slice", 25.0)]
        assert needed25 is not None and needed25 <= 14
        needed30, _ = results[("704x480", "GOP", 30.0)]
        assert needed30 is None  # 26-27 pics/s max: 30/s not sustainable
    if "1408x960" in PAPER_CASES:
        for rate in RATES:
            needed, _ = results[("1408x960", "GOP", rate)]
            assert needed is None, "1408x960 should not be real-time here"


def test_realtime_required_preroll(benchmark, env, record):
    """Playback buffer each decomposition needs at 30 pics/s, P=14.

    Quantifies Section 5.1.1's latency argument: the GOP decoder needs
    roughly a serial-GOP decode time of buffer; the slice decoder needs
    a handful of pictures.
    """
    res = "352x240" if "352x240" in PAPER_CASES else next(iter(PAPER_CASES))
    profile = env.profile(res, 13, pictures=PICTURES)
    period = 1.0 / 30.0

    def run():
        out = {}
        gop = env.run_gop(profile, 14, display_rate_hz=30.0)
        sl = env.run_slice(
            profile, 14, SliceMode.IMPROVED, display_rate_hz=30.0
        )
        for name, result in (("GOP", gop), ("improved slice", sl)):
            # Lateness shrinks one period per preroll picture, so the
            # zero-preroll max lateness gives the required buffer.
            out[name] = -(-result.max_lateness_seconds // period)
        return out

    needed = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["version", "required preroll (pictures)", "buffer seconds"],
        title=f"Preroll needed for deadline-free 30/s playback, {res}, P=14",
    )
    for name, pictures in needed.items():
        table.add_row(name, int(pictures), round(pictures / 30.0, 2))
    record(table.render())

    if res == "352x240":
        # GOP: about a serial-GOP decode (13 pics at ~5.4/s => ~70
        # display slots). Slice: a few pictures.
        assert needed["GOP"] > 5 * needed["improved slice"]
        assert needed["improved slice"] <= 15
