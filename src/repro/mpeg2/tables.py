"""MPEG-2 coding tables: quantization matrices and VLC codebooks.

Quantization matrices are the standard defaults (ISO 13818-2 6.3.11).

VLC codebooks: the macroblock-type tables use the standard's explicit
codewords (they are tiny and well known); the larger tables (DC size,
AC run/level, macroblock address increment, coded block pattern,
motion code) are built with our canonical Huffman constructor over
declared frequency orders, giving structurally equivalent prefix codes
with the same symbol alphabets and the same escape mechanisms as the
standard (see DESIGN.md for the substitution note).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpeg2.constants import PictureType
from repro.mpeg2.huffman import build_codebook, geometric_weights
from repro.mpeg2.vlc import VLCTable

# ----------------------------------------------------------------------
# Quantization matrices (raster order, ISO 13818-2 defaults)
# ----------------------------------------------------------------------
DEFAULT_INTRA_QUANT_MATRIX = np.array(
    [
        [8, 16, 19, 22, 26, 27, 29, 34],
        [16, 16, 22, 24, 27, 29, 34, 37],
        [19, 22, 26, 27, 29, 34, 34, 38],
        [22, 22, 26, 27, 29, 34, 37, 40],
        [22, 26, 27, 29, 32, 35, 40, 48],
        [26, 27, 29, 32, 35, 40, 48, 58],
        [26, 27, 29, 34, 38, 46, 56, 69],
        [27, 29, 35, 38, 46, 56, 69, 83],
    ],
    dtype=np.int64,
)

DEFAULT_NON_INTRA_QUANT_MATRIX = np.full((8, 8), 16, dtype=np.int64)


# ----------------------------------------------------------------------
# DC size tables (alphabet 0..11 as in ISO 13818-2 Table B-12/B-13)
# ----------------------------------------------------------------------
_DC_SIZE_LUMA_ORDER = [1, 2, 0, 3, 4, 5, 6, 7, 8, 9, 10, 11]
_DC_SIZE_CHROMA_ORDER = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]

DC_SIZE_LUMA = VLCTable(
    build_codebook(geometric_weights(_DC_SIZE_LUMA_ORDER, ratio=0.55)),
    name="dct_dc_size_luminance",
)
DC_SIZE_CHROMA = VLCTable(
    build_codebook(geometric_weights(_DC_SIZE_CHROMA_ORDER, ratio=0.55)),
    name="dct_dc_size_chrominance",
)

#: Maximum representable DC size (bits of the DC differential magnitude).
MAX_DC_SIZE = 11


# ----------------------------------------------------------------------
# AC run/level table (structure of ISO 13818-2 Table B-14)
# ----------------------------------------------------------------------
#: End-of-block marker symbol.
EOB = "EOB"
#: Escape marker symbol: followed by 6-bit run and 12-bit signed level.
ESCAPE = "ESC"
ESCAPE_RUN_BITS = 6
ESCAPE_LEVEL_BITS = 12

# Symbols in decreasing expected frequency.  EOB terminates every coded
# block so it is the most frequent symbol; short zero-runs with +/-1
# levels dominate after that (this is exactly the shape of Table B-14).
_AC_ORDER: list[object] = [EOB, (0, 1), (1, 1), (0, 2), (2, 1), (0, 3)]
_AC_ORDER += [(3, 1), (4, 1), (1, 2), (5, 1), (6, 1), (7, 1)]
_AC_ORDER += [ESCAPE]
_AC_ORDER += [(0, 4), (2, 2), (8, 1), (9, 1), (0, 5), (0, 6), (1, 3)]
_AC_ORDER += [(3, 2), (10, 1), (11, 1), (12, 1), (13, 1), (0, 7), (1, 4)]
_AC_ORDER += [(2, 3), (4, 2), (5, 2), (14, 1), (15, 1), (16, 1), (0, 8)]
_AC_ORDER += [(0, 9), (0, 10), (0, 11), (1, 5), (2, 4), (3, 3), (6, 2)]
_AC_ORDER += [(17, 1), (18, 1), (19, 1), (20, 1), (21, 1), (0, 12), (0, 13)]
_AC_ORDER += [(0, 14), (0, 15), (1, 6), (1, 7), (2, 5), (4, 3), (7, 2)]
_AC_ORDER += [(8, 2), (22, 1), (23, 1), (24, 1), (25, 1), (26, 1), (0, 16)]
_AC_ORDER += [(0, 17), (0, 18), (0, 19), (0, 20), (1, 8), (3, 4), (5, 3)]
_AC_ORDER += [(9, 2), (10, 2), (27, 1), (28, 1), (29, 1), (30, 1), (31, 1)]

AC_RUN_LEVEL = VLCTable(
    build_codebook(geometric_weights(_AC_ORDER, ratio=0.82)),
    name="dct_coefficients",
)

#: Fast lookup of (run, |level|) pairs that have a non-escape codeword.
AC_CODED_PAIRS = frozenset(s for s in _AC_ORDER if isinstance(s, tuple))


# ----------------------------------------------------------------------
# Macroblock address increment (ISO 13818-2 Table B-1 structure)
# ----------------------------------------------------------------------
#: Escape symbol: adds 33 to the following decoded increment.
MBA_ESCAPE = "MBA_ESC"
MBA_ESCAPE_VALUE = 33

_MBA_ORDER: list[object] = list(range(1, 34))
_MBA_ORDER.insert(8, MBA_ESCAPE)  # moderate-length code, as in B-1

MB_ADDRESS_INCREMENT = VLCTable(
    build_codebook(geometric_weights(_MBA_ORDER, ratio=0.60)),
    name="macroblock_address_increment",
)


# ----------------------------------------------------------------------
# Macroblock type tables (ISO 11172-2 Tables B.2a-c codewords, verbatim)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MbMode:
    """Decoded macroblock_type flags.

    Attributes mirror the standard's derived flags: ``quant`` signals a
    new quantiser_scale_code in the macroblock header, ``mc_fwd`` /
    ``mc_bwd`` signal motion vectors, ``coded`` signals a coded block
    pattern, ``intra`` signals an intra-coded macroblock.
    """

    quant: bool = False
    mc_fwd: bool = False
    mc_bwd: bool = False
    coded: bool = False
    intra: bool = False

    def __post_init__(self) -> None:
        if self.intra and (self.mc_fwd or self.mc_bwd or self.coded):
            raise ValueError("intra macroblocks carry no MC flags or CBP")

    @property
    def has_motion(self) -> bool:
        return self.mc_fwd or self.mc_bwd


# I-pictures: intra / intra+quant (Table B.2a).
MB_TYPE_I = VLCTable(
    {
        MbMode(intra=True): "1",
        MbMode(intra=True, quant=True): "01",
    },
    name="macroblock_type_I",
)

# P-pictures (Table B.2b).
MB_TYPE_P = VLCTable(
    {
        MbMode(mc_fwd=True, coded=True): "1",
        MbMode(coded=True): "01",
        MbMode(mc_fwd=True): "001",
        MbMode(intra=True): "00011",
        MbMode(mc_fwd=True, coded=True, quant=True): "00010",
        MbMode(coded=True, quant=True): "00001",
        MbMode(intra=True, quant=True): "000001",
    },
    name="macroblock_type_P",
)

# B-pictures (Table B.2c).
MB_TYPE_B = VLCTable(
    {
        MbMode(mc_fwd=True, mc_bwd=True): "10",
        MbMode(mc_fwd=True, mc_bwd=True, coded=True): "11",
        MbMode(mc_bwd=True): "010",
        MbMode(mc_bwd=True, coded=True): "011",
        MbMode(mc_fwd=True): "0010",
        MbMode(mc_fwd=True, coded=True): "0011",
        MbMode(intra=True): "00011",
        MbMode(mc_fwd=True, mc_bwd=True, coded=True, quant=True): "00010",
        MbMode(mc_fwd=True, coded=True, quant=True): "000011",
        MbMode(mc_bwd=True, coded=True, quant=True): "000010",
        MbMode(intra=True, quant=True): "000001",
    },
    name="macroblock_type_B",
)

MB_TYPE_TABLES: dict[PictureType, VLCTable] = {
    PictureType.I: MB_TYPE_I,
    PictureType.P: MB_TYPE_P,
    PictureType.B: MB_TYPE_B,
}


# ----------------------------------------------------------------------
# Coded block pattern (alphabet 1..63; structure of Table B-9)
# ----------------------------------------------------------------------
# Common patterns first: whole-luma, single-block, luma pairs, then the
# rest in ascending order.
_CBP_COMMON = [60, 4, 8, 16, 32, 62, 61, 12, 48, 20, 40, 28, 44, 52, 56, 1, 2, 36, 24, 63]
_CBP_ORDER = _CBP_COMMON + [c for c in range(1, 64) if c not in _CBP_COMMON]

CODED_BLOCK_PATTERN = VLCTable(
    build_codebook(geometric_weights(_CBP_ORDER, ratio=0.88)),
    name="coded_block_pattern",
)


# ----------------------------------------------------------------------
# Motion code (alphabet -16..16; structure of Table B-10)
# ----------------------------------------------------------------------
_MOTION_ORDER: list[int] = [0]
for _m in range(1, 17):
    _MOTION_ORDER += [_m, -_m]

MOTION_CODE = VLCTable(
    build_codebook(geometric_weights(_MOTION_ORDER, ratio=0.68)),
    name="motion_code",
)

#: Motion codes span -16..16; with f_code f the decoded differential is
#: ``code * (1 << (f-1)) +/- residual`` and the representable range is
#: ``[-16 << (f-1), (16 << (f-1)) - 1]`` around the predictor (modulo
#: wrap), exactly as in ISO 11172-2 2.4.4.2.
MOTION_CODE_MAX = 16
