"""Bit-level I/O, start codes, and emulation prevention."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bitstream import (
    BitReader,
    BitWriter,
    GROUP_START_CODE,
    PICTURE_START_CODE,
    SEQUENCE_HEADER_CODE,
    StartCodeHit,
    find_start_codes,
    is_slice_start_code,
)
from repro.bitstream.emulation import (
    contains_start_code_prefix,
    escape_payload,
    unescape_payload,
)
from repro.bitstream.reader import BitstreamError


class TestBitWriter:
    def test_writes_msb_first(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        w.write_bits(0b0010, 4)
        assert w.getvalue() == bytes([0b10110010])

    def test_cross_byte_value(self):
        w = BitWriter()
        w.write_bits(0xABC, 12)
        w.align()
        assert w.getvalue() == bytes([0xAB, 0xC0])

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.bit_position == 0

    def test_value_too_large_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(4, 2)

    def test_negative_value_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(-1, 3)

    def test_getvalue_requires_alignment(self):
        w = BitWriter()
        w.write_bits(1, 3)
        with pytest.raises(ValueError):
            w.getvalue()
        w.align()
        assert w.getvalue() == bytes([0b00100000])

    def test_write_string(self):
        w = BitWriter()
        w.write_string("0000110")
        w.write_bit(1)
        assert w.getvalue() == bytes([0b00001101])

    def test_signed_roundtrip(self):
        w = BitWriter()
        w.write_signed(-3, 4)
        w.write_signed(5, 4)
        r = BitReader(w.getvalue())
        assert r.read_signed(4) == -3
        assert r.read_signed(4) == 5

    def test_start_code_is_byte_aligned(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_start_code(GROUP_START_CODE)
        data = w.getvalue()
        assert data[1:4] == b"\x00\x00\x01"
        assert data[4] == GROUP_START_CODE


class TestBitReader:
    def test_read_bits(self):
        r = BitReader(bytes([0b10110010, 0xFF]))
        assert r.read_bits(4) == 0b1011
        assert r.read_bits(4) == 0b0010
        assert r.read_bits(8) == 0xFF

    def test_read_past_end_raises(self):
        r = BitReader(b"\xAA")
        r.read_bits(8)
        with pytest.raises(BitstreamError):
            r.read_bits(1)

    def test_peek_does_not_consume(self):
        r = BitReader(b"\xF0")
        assert r.peek_bits(4) == 0xF
        assert r.peek_bits(4) == 0xF
        assert r.read_bits(4) == 0xF

    def test_peek_pads_past_end_with_zeros(self):
        r = BitReader(b"\xFF")
        assert r.peek_bits(12) == 0xFF0

    def test_align(self):
        r = BitReader(b"\x80\xFF")
        r.read_bits(1)
        r.align()
        assert r.bit_position == 8
        r.align()
        assert r.bit_position == 8

    def test_next_start_code(self):
        data = b"\xAB\x00\x00\x01\xB8payload\x00\x00\x01\x00"
        r = BitReader(data)
        assert r.next_start_code() == 0xB8
        assert r.next_start_code() == 0x00
        assert r.next_start_code() is None

    def test_at_start_code(self):
        r = BitReader(b"\x00\x00\x01\xB3")
        assert r.at_start_code()
        r.read_bits(8)
        assert not r.at_start_code()

    @given(st.lists(st.tuples(st.integers(0, 24), st.integers(min_value=0)),
                    min_size=1, max_size=50))
    def test_roundtrip_property(self, fields):
        """Any sequence of (width, value) fields round-trips exactly."""
        fields = [(n, v & ((1 << n) - 1)) for n, v in fields]
        w = BitWriter()
        for n, v in fields:
            w.write_bits(v, n)
        w.align()
        r = BitReader(w.getvalue())
        for n, v in fields:
            assert r.read_bits(n) == v


class TestStartCodes:
    def test_slice_range(self):
        assert not is_slice_start_code(0x00)
        assert is_slice_start_code(0x01)
        assert is_slice_start_code(0xAF)
        assert not is_slice_start_code(0xB0)

    def test_find_start_codes(self):
        data = b"xx\x00\x00\x01\xB3abc\x00\x00\x01\x01yz"
        hits = find_start_codes(data)
        assert hits == [
            StartCodeHit(offset=2, code=SEQUENCE_HEADER_CODE),
            StartCodeHit(offset=9, code=0x01),
        ]
        assert hits[1].is_slice

    def test_extra_leading_zeros(self):
        # Any number of zero bytes may precede the prefix.
        data = b"\x00\x00\x00\x00\x01\x00"
        hits = find_start_codes(data)
        assert len(hits) == 1
        assert hits[0].code == PICTURE_START_CODE
        assert hits[0].offset == 2

    def test_truncated_prefix_at_end_ignored(self):
        assert find_start_codes(b"ab\x00\x00\x01") == []


class TestEmulationPrevention:
    def test_escapes_prefix(self):
        raw = b"\x00\x00\x01\xB8"
        esc = escape_payload(raw)
        assert not contains_start_code_prefix(esc)
        assert unescape_payload(esc) == raw

    def test_escapes_zero_zero_zero(self):
        esc = escape_payload(b"\x00\x00\x00\x00")
        assert not contains_start_code_prefix(esc)
        assert unescape_payload(esc) == b"\x00\x00\x00\x00"

    def test_plain_data_untouched(self):
        raw = bytes(range(4, 256))
        assert escape_payload(raw) == raw

    @given(st.binary(max_size=300))
    def test_roundtrip_and_safety_property(self, raw):
        esc = escape_payload(raw)
        assert unescape_payload(esc) == raw
        assert not contains_start_code_prefix(esc)
        # Escaping may only insert bytes, never remove them.
        assert len(esc) >= len(raw)
