"""The paper's contribution: parallel MPEG-2 decoders on the simulated SMP.

Architecture (paper Fig. 4): one *scan* process locates tasks by start
code and feeds task queues; *worker* processes decode tasks; one
*display* process reorders decoded pictures into display order.  Two
decompositions are provided:

* :mod:`~repro.parallel.gop_level` — coarse tasks: whole closed GOPs
  (Section 5.1).  Few queue operations, no inter-worker communication,
  but memory grows with workers x GOP size x resolution and random
  access is slow.
* :mod:`~repro.parallel.slice_level` — fine tasks: slices within a
  picture via a 2-D picture/slice queue (Section 5.2).  Two variants:
  ``simple`` synchronises after every picture; ``improved`` only at
  reference (I/P) pictures, exploiting that consecutive B-pictures are
  mutually independent.

Both run on real bitstreams.  Workers either replay pre-profiled
per-task costs (fast, used for processor sweeps) or actually decode
(used by the tests that prove parallel output == sequential output).

Beyond the simulation, :mod:`~repro.parallel.mp` runs the same
scan/worker/display architecture on *real* cores: OS worker processes
(no GIL), a ``multiprocessing.shared_memory`` frame pool, and a
display-order merger — the empirical counterpart of Fig. 5 measured by
``benchmarks/perf_parallel.py``.  :mod:`~repro.parallel.mp_slice` does
the same for the fine-grained decomposition: persistent slice workers
fed from the real 2-D picture/slice queue, with both the ``simple``
and ``improved`` barrier policies.
"""

from repro.parallel.profile import (
    StreamProfile,
    GopProfile,
    PictureProfile,
    SliceProfile,
    profile_stream,
)
from repro.parallel.gop_level import GopLevelDecoder, ParallelConfig, DecodeRunResult
from repro.parallel.slice_level import SliceLevelDecoder, SliceMode
from repro.parallel.macroblock_level import MacroblockLevelDecoder
from repro.parallel.numa import PlacedGopDecoder, PlacementPolicy
from repro.parallel.pacing import DisplayPacer
from repro.parallel.random_access import seek_latency, SeekLatency
from repro.parallel.stats import (
    speedup_curve,
    load_balance,
    sync_ratio,
    pictures_per_second,
)
from repro.parallel.memory_model import MemoryModel
from repro.parallel.mp import (
    MPGopDecoder,
    SharedFramePool,
    FrameLayout,
    decode_parallel,
    scan_gop_tasks,
)
from repro.parallel.mp_slice import (
    MPSliceDecoder,
    PictureSliceQueue,
    DisplayMerger,
    decode_slice_parallel,
    scan_slice_tasks,
)

__all__ = [
    "MPGopDecoder",
    "MPSliceDecoder",
    "PictureSliceQueue",
    "DisplayMerger",
    "decode_slice_parallel",
    "scan_slice_tasks",
    "SharedFramePool",
    "FrameLayout",
    "decode_parallel",
    "scan_gop_tasks",
    "StreamProfile",
    "GopProfile",
    "PictureProfile",
    "SliceProfile",
    "profile_stream",
    "GopLevelDecoder",
    "SliceLevelDecoder",
    "SliceMode",
    "MacroblockLevelDecoder",
    "PlacedGopDecoder",
    "PlacementPolicy",
    "DisplayPacer",
    "seek_latency",
    "SeekLatency",
    "ParallelConfig",
    "DecodeRunResult",
    "speedup_curve",
    "load_balance",
    "sync_ratio",
    "pictures_per_second",
    "MemoryModel",
]
