"""Figure 6 — GOP-version load balance vs GOP size.

Paper: with small GOPs the min/max/average computing times of the
workers are close together; as the GOP size grows, tasks get fewer and
larger and the imbalance becomes visible — an artifact of the finite
stream length (one extra task per worker looks large).  We measure
(max - min)/mean across workers for each GOP size at a fixed stream
length, expecting the spread to grow with GOP size.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.parallel.stats import load_balance
from repro.smp import CHALLENGE
from repro.video.streams import PAPER_GOP_SIZES

from benchmarks.conftest import PAPER_CASES

WORKERS = 14
#: Fixed stream length, as in the paper (its streams are 1120 pictures).
PICTURES = 1120


def test_fig6_load_balance(benchmark, env, record):
    res = "352x240" if "352x240" in PAPER_CASES else next(iter(PAPER_CASES))

    def run():
        out = {}
        for gop_size in PAPER_GOP_SIZES:
            profile = env.profile_with_gop_size(res, gop_size, PICTURES)
            result = env.run_gop(profile, WORKERS)
            out[gop_size] = load_balance(result)
        return out

    balances = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["GOP size", "tasks", "min s", "max s", "mean s", "spread %"],
        title=(
            f"Figure 6: worker computing time spread, {res}, "
            f"{WORKERS} workers, {PICTURES} pictures"
        ),
    )
    spreads = {}
    for gop_size, (lo, hi, mean) in balances.items():
        spread = (hi - lo) / mean * 100
        spreads[gop_size] = spread
        table.add_row(
            gop_size,
            PICTURES // gop_size,
            round(CHALLENGE.seconds(lo), 2),
            round(CHALLENGE.seconds(hi), 2),
            round(CHALLENGE.seconds(mean), 2),
            round(spread, 1),
        )
    record(table.render())

    # Paper shape: small GOPs balanced, imbalance grows with GOP size.
    assert spreads[4] < spreads[31], (
        f"spread did not grow with GOP size: {spreads}"
    )
    assert spreads[4] < 15.0, f"small GOPs should balance well: {spreads[4]:.1f}%"
