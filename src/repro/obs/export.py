"""Live metrics export: Prometheus text exposition over stdlib HTTP.

The PR-3 metrics registry was snapshot-at-exit only; this module makes
it scrapeable while a server is running.  ``render_exposition`` turns a
registry snapshot into Prometheus text exposition format 0.0.4 —
counters as ``*_total``, gauges as a value plus a ``*_max`` high-water
series, histograms as summaries with ``quantile`` labels — and
``MetricsExporter`` serves it from a daemonised
``ThreadingHTTPServer`` on a side port (stdlib only; no client
libraries, no dependencies).

The exporter meters itself: every scrape bumps
``obs.export.scrapes`` and records ``obs.export.render_ms``, so the
cost of being observed is itself observable (the overhead-guard test
pins it).  ``parse_exposition`` is the matching reader used by tests
and CI to assert on scraped values without a Prometheus binary.
"""

from __future__ import annotations

import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from .metrics import MetricsRegistry, metrics

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: quantiles exported for each histogram (from its snapshot fields)
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus grammar.

    ``net.pictures.sent`` becomes ``repro_net_pictures_sent`` — dots
    (and anything else outside ``[a-zA-Z0-9_:]``) collapse to ``_`` and
    every series carries the ``repro_`` namespace prefix.
    """

    clean = _NAME_OK.sub("_", name.strip())
    if not clean or not (clean[0].isalpha() or clean[0] in "_:"):
        clean = "_" + clean
    return f"repro_{clean}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_exposition(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as exposition text."""

    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = sanitize_metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        gauge = snapshot["gauges"][name]
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauge.get('value', 0.0))}")
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {_fmt(gauge.get('max', 0.0))}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        count = hist.get("count", 0)
        for label, key in _QUANTILES:
            if key in hist:
                lines.append(
                    f'{metric}{{quantile="{label}"}} {_fmt(hist[key])}'
                )
        lines.append(f"{metric}_sum {_fmt(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count {_fmt(count)}")
        if "max" in hist:
            lines.append(f"# TYPE {metric}_max gauge")
            lines.append(f"{metric}_max {_fmt(hist['max'])}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{series: value}``.

    Labelled series keep their label block verbatim in the key
    (``repro_x{quantile="0.99"}``).  Used by tests and the CI telemetry
    job to assert on scraped values without external tooling.
    """

    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        if not series:
            raise ValueError(f"unparseable exposition line: {line!r}")
        out[series] = float(value)
    return out


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        exporter: MetricsExporter = self.server.exporter  # type: ignore[attr-defined]
        if self.path.rstrip("/") not in ("", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        body = exporter.scrape().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        # Scrapes are periodic; don't spam the server's stderr.
        pass


class MetricsExporter:
    """A pull-based /metrics endpoint over the process registry.

    ``port=0`` binds an ephemeral port (the bound port is returned by
    :meth:`start` and kept in :attr:`port`), which is what tests use.
    The serving thread is a daemon so a crashed server never hangs on
    its exporter.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self.host = host
        self.port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else metrics()

    def scrape(self) -> str:
        """Render the registry, metering the scrape itself."""

        t0 = time.perf_counter()
        # Metered before rendering so a scrape observes itself; the
        # render time necessarily lands one scrape late.
        self.registry.counter("obs.export.scrapes").inc()
        text = render_exposition(self.registry.snapshot())
        self.registry.histogram("obs.export.render_ms").observe(
            (time.perf_counter() - t0) * 1000.0
        )
        return text

    def start(self) -> int:
        if self._httpd is not None:
            return self.port
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.exporter = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"
