#!/usr/bin/env python3
"""Error resilience: losing slices on the wire, concealing on decode.

Slice independence — every predictor resets at a slice boundary — is
the property the paper's fine-grained parallel decomposition rests on.
The same property bounds the blast radius of transmission errors: a
corrupt slice costs one macroblock row, not the picture.  This example
simulates a lossy channel that corrupts a fraction of slices and
compares the strict decoder (fails) with the resilient decoder
(conceals and keeps playing), reporting quality versus loss rate.

Run:  python examples/error_resilience.py
"""

from __future__ import annotations

import random

from repro.analysis import TextTable
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder, decode_sequence
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.mpeg2.index import build_index
from repro.video.metrics import sequence_psnr
from repro.video.synthetic import SyntheticVideo


def corrupt_fraction(stream: bytes, fraction: float, seed: int) -> bytes:
    """Zero the payloads of a random ``fraction`` of slices."""
    idx = build_index(stream)
    slices = [s for g in idx.gops for p in g.pictures for s in p.slices]
    rng = random.Random(seed)
    victims = rng.sample(slices, k=max(int(len(slices) * fraction), 1))
    out = bytearray(stream)
    for s in victims:
        out[s.payload_start : s.payload_end] = bytes(
            s.payload_end - s.payload_start
        )
    return bytes(out)


def main() -> None:
    video = SyntheticVideo(width=176, height=120, seed=17)
    frames = video.frames(26)
    stream = encode_sequence(frames, EncoderConfig(gop_size=13, qscale_code=3))
    clean = decode_sequence(stream)
    print(
        f"clean stream: {len(stream):,} bytes, "
        f"PSNR {sequence_psnr(frames, clean):.1f} dB\n"
    )

    table = TextTable(
        ["slice loss", "strict decoder", "concealed slices", "PSNR dB"],
        title="Decoding under slice loss (resilient decoder conceals)",
    )
    for fraction in (0.01, 0.05, 0.15, 0.30):
        damaged = corrupt_fraction(stream, fraction, seed=1)
        try:
            decode_sequence(damaged)
            strict = "decoded (!)"
        except Exception as exc:
            strict = f"fails ({type(exc).__name__})"
        counters = WorkCounters()
        decoded = SequenceDecoder(damaged, resilient=True).decode_all(counters)
        table.add_row(
            f"{fraction:.0%}",
            strict,
            counters.concealed_slices,
            round(sequence_psnr(frames, decoded), 1),
        )
    print(table.render())
    print(
        "\nConcealment copies the co-located row from the forward reference\n"
        "(grey for I-pictures), so quality degrades gracefully with loss —\n"
        "damage from a lost reference row persists only until the next\n"
        "I-picture, i.e. one GOP (the same closed-GOP boundary the\n"
        "parallel decoders exploit)."
    )


if __name__ == "__main__":
    main()
