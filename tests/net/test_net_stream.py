"""End-to-end streaming: server + client over real localhost sockets.

The tentpole invariants:

* **Transparency** — on a clean link the client's reassembled frames
  are bit-identical to the pinned golden digests (the same pixels the
  scalar oracle produces); the network edge adds zero drift.
* **Delivered-or-concealed** — under packet loss every announced
  picture still ends in a receipt: complete, concealed (with the
  shared ``conceal_rows`` primitives), or explicitly shed; sessions
  never fail from slice loss.
* **Containment** — rejects (unknown stream, capacity, bandwidth) are
  explicit wire messages; a client disconnect cancels only its own
  session and the server keeps serving everyone else.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.net.client import stream_session
from repro.net.impair import ImpairmentProfile
from repro.net.server import NetServer
from repro.obs.stalls import REASON_CONCEAL_SPATIAL, REASON_CONCEAL_TEMPORAL

pytestmark = pytest.mark.net

VECTOR_DIR = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "vectors"
)

with open(os.path.join(VECTOR_DIR, "digests.json")) as _fh:
    DIGESTS = json.load(_fh)["streams"]


def load(name: str) -> bytes:
    with open(os.path.join(VECTOR_DIR, f"{name}.m2v"), "rb") as fh:
        return fh.read()


def run(coro):
    return asyncio.run(coro)


def _long_stream() -> bytes:
    """~48 pictures: a decode window wide enough (~0.25 s in-process)
    that a second client reliably arrives while the first session is
    still *decoding* (the service capacity window) and still
    *streaming* (the bandwidth window)."""
    from repro.mpeg2.encoder import EncoderConfig, encode_sequence
    from repro.video.synthetic import SyntheticVideo

    video = SyntheticVideo(width=48, height=32, seed=19).frames(48)
    return encode_sequence(video, EncoderConfig(gop_size=4, qscale_code=3))


STREAMS = {
    "ipb": load("ipb_64x48_gop13"),
    "two_gop": load("two_gop_48x32"),
    "long": _long_stream(),
}


async def _serve_one(server_kwargs, client_kwargs):
    srv = NetServer(STREAMS, workers=0, **server_kwargs)
    await srv.start()
    try:
        result = await stream_session(
            "127.0.0.1", srv.port, **client_kwargs
        )
    finally:
        report = await srv.aclose()
    return result, report


class TestCleanLink:
    @pytest.mark.parametrize(
        "stream,vector",
        [("ipb", "ipb_64x48_gop13"), ("two_gop", "two_gop_48x32")],
    )
    def test_frames_bit_identical_to_golden(self, stream, vector):
        result, report = run(
            _serve_one(
                {"fps": 240.0},
                {"stream": stream, "keep_frames": True},
            )
        )
        assert result.complete
        assert result.concealed_slices == 0 and result.late_slices == 0
        assert [f.digest() for f in result.frames] == (
            DIGESTS[vector]["frame_digests"]
        )
        assert report["service"]["status_counts"] == {"done": 1}

    def test_lateness_is_measured_per_picture(self):
        result, _ = run(
            _serve_one({"fps": 240.0}, {"stream": "two_gop"})
        )
        assert result.pacer.emitted == result.pictures
        assert result.to_json()["lateness"] is not None


class TestLossyLink:
    def test_delivered_or_concealed_under_loss(self):
        # 20% loss: enough that some slice in 8 pictures x 2 rows
        # virtually always drops, and every picture must still settle.
        result, report = run(
            _serve_one(
                {
                    "fps": 240.0,
                    "impairment": ImpairmentProfile(loss=0.2, seed=11),
                },
                {"stream": "two_gop"},
            )
        )
        assert result.complete, result.to_json()
        assert len(result.receipts) == result.pictures
        assert result.concealed_slices > 0
        impair = report["connections"][0]["impair"]
        assert impair["dropped"] > 0
        # Conservation across the wire: bands received + dropped =
        # bands sent (rows per picture x pictures that sent bands).
        sent_bands = sum(r.rows for r in result.receipts if not r.shed)
        got_bands = sum(r.bands for r in result.receipts)
        assert got_bands + impair["dropped"] == sent_bands
        # The client's STATS receipts made it back into the report.
        assert report["client_concealed_slices"] == result.concealed_slices

    def test_concealment_uses_canonical_stall_reasons(self):
        result, _ = run(
            _serve_one(
                {
                    "fps": 240.0,
                    "impairment": ImpairmentProfile(loss=0.3, seed=5),
                },
                {"stream": "ipb"},
            )
        )
        assert result.complete
        reasons = set(result.stalls.by_reason())
        assert reasons <= {REASON_CONCEAL_TEMPORAL, REASON_CONCEAL_SPATIAL}
        assert reasons, "30% loss produced no concealment stalls"

    def test_reorder_and_jitter_alone_need_no_concealment(self):
        result, _ = run(
            _serve_one(
                {
                    "fps": 240.0,
                    "impairment": ImpairmentProfile(
                        reorder=0.4, jitter_ms=0.5, seed=3
                    ),
                },
                {"stream": "two_gop", "keep_frames": True},
            )
        )
        assert result.complete
        assert result.concealed_slices == 0
        assert [f.digest() for f in result.frames] == (
            DIGESTS["two_gop_48x32"]["frame_digests"]
        )

    def test_bandwidth_cap_delays_but_delivers(self):
        result, report = run(
            _serve_one(
                {
                    "fps": 240.0,
                    "impairment": ImpairmentProfile(
                        bandwidth_bps=20e6, seed=1
                    ),
                },
                {"stream": "two_gop"},
            )
        )
        assert result.complete and result.concealed_slices == 0
        assert report["connections"][0]["impair"]["delayed"] > 0


class TestAdmission:
    def test_unknown_stream_rejected(self):
        result, _ = run(
            _serve_one({"fps": 240.0}, {"stream": "nope"})
        )
        assert result.status == "rejected:unknown-stream"

    def test_capacity_gate_rejects_overload(self):
        async def scenario():
            srv = NetServer(
                STREAMS, workers=0, fps=30.0, capacity=1, max_queue=0
            )
            await srv.start()
            try:
                # The long stream decodes for ~0.25s, so the second
                # client arrives while the only capacity slot is busy.
                first = asyncio.ensure_future(
                    stream_session("127.0.0.1", srv.port, "long")
                )
                await asyncio.sleep(0.05)
                second = await stream_session(
                    "127.0.0.1", srv.port, "two_gop"
                )
                return await first, second
            finally:
                await srv.aclose()

        first, second = run(scenario())
        assert first.complete
        assert second.status == "rejected:capacity"

    def test_bandwidth_gate_rejects_second_session(self):
        async def scenario():
            srv = NetServer(
                STREAMS, workers=0, fps=30.0, capacity=4,
                link_bps=1.0,  # below any stream's peak: 1 admit max
            )
            await srv.start()
            try:
                first = asyncio.ensure_future(
                    stream_session("127.0.0.1", srv.port, "ipb")
                )
                await asyncio.sleep(0.1)
                second = await stream_session(
                    "127.0.0.1", srv.port, "two_gop"
                )
                return await first, second
            finally:
                await srv.aclose()

        first, second = run(scenario())
        # First always admitted (degrades on the wire, never refused).
        assert first.complete
        assert second.status == "rejected:bandwidth"

    def test_bandwidth_slot_freed_after_session_ends(self):
        async def scenario():
            srv = NetServer(STREAMS, workers=0, fps=240.0, link_bps=1.0)
            await srv.start()
            try:
                a = await stream_session("127.0.0.1", srv.port, "ipb")
                b = await stream_session("127.0.0.1", srv.port, "ipb")
                return a, b
            finally:
                await srv.aclose()

        a, b = run(scenario())
        assert a.complete and b.complete


class TestDisconnectContainment:
    def test_disconnect_cancels_only_own_session(self):
        async def scenario():
            srv = NetServer(STREAMS, workers=0, fps=60.0, capacity=4)
            await srv.start()
            try:
                quitter = asyncio.ensure_future(
                    stream_session(
                        "127.0.0.1", srv.port, "ipb", disconnect_after=2
                    )
                )
                stayer = asyncio.ensure_future(
                    stream_session("127.0.0.1", srv.port, "two_gop")
                )
                q, s = await asyncio.gather(quitter, stayer)
                # A third client connects *after* the hangup: the
                # server is still healthy.
                late = await stream_session(
                    "127.0.0.1", srv.port, "ipb", keep_frames=True
                )
                return q, s, late
            finally:
                report = await srv.aclose()
                scenario.report = report

        q, s, late = run(scenario())
        assert q.status == "disconnected"
        assert len(q.receipts) == 2
        assert s.complete
        assert late.complete
        assert [f.digest() for f in late.frames] == (
            DIGESTS["ipb_64x48_gop13"]["frame_digests"]
        )
        counts = scenario.report["service"]["status_counts"]
        # The quitter's session either finished decoding before the
        # hangup landed (tiny stream) or was cancelled — never failed.
        assert counts.get("failed", 0) == 0
        assert counts.get("done", 0) >= 2

    def test_lossy_multi_client_all_settle(self):
        async def scenario():
            srv = NetServer(
                STREAMS, workers=0, fps=120.0, capacity=4,
                impairment=ImpairmentProfile(loss=0.05, seed=42),
            )
            await srv.start()
            try:
                results = await asyncio.gather(*[
                    stream_session(
                        "127.0.0.1", srv.port,
                        "ipb" if i % 2 == 0 else "two_gop",
                    )
                    for i in range(4)
                ])
                return results
            finally:
                report = await srv.aclose()
                scenario.report = report

        results = run(scenario())
        assert all(r.complete for r in results), [
            r.to_json() for r in results
        ]
        counts = scenario.report["service"]["status_counts"]
        assert counts == {"done": 4}


class TestTelemetry:
    """PR-8: trace propagation, STATS pushes, SLO, flight recorder."""

    def test_clock_handshake_offset_within_error_bound(self):
        result, _ = run(_serve_one({"fps": 120.0}, {"stream": "two_gop"}))
        assert result.complete
        clock = result.clock
        assert clock is not None
        # Both sides read the same CLOCK_MONOTONIC on localhost, so the
        # true offset is 0 and the estimate must sit inside its own
        # declared error bound (rtt/2).
        assert abs(clock.offset_ns) <= clock.error_bound_ns
        assert clock.rtt_ns >= 0

    def test_accept_echoes_client_trace_id(self):
        result, report = run(
            _serve_one({"fps": 120.0}, {"stream": "two_gop"})
        )
        assert result.trace_id and len(result.trace_id) == 16
        (conn,) = report["connections"]
        assert conn["trace_id"] == result.trace_id

    def test_traced_lossy_session_produces_joinable_merged_trace(
        self, tmp_path
    ):
        from repro.obs import disable_tracing, enable_tracing, get_tracer
        from repro.obs.propagate import (
            merge_traces,
            validate_joins,
            waterfall,
        )

        enable_tracing(process_name="net-test")
        try:
            result, _ = run(
                _serve_one(
                    {
                        "fps": 120.0,
                        "impairment": ImpairmentProfile(loss=0.1, seed=7),
                    },
                    {"stream": "two_gop"},
                )
            )
            doc = get_tracer().write_chrome(str(tmp_path / "t.json"))
        finally:
            disable_tracing()
        assert result.complete
        # In-process run: one shard holding both halves; the merge and
        # join validation must still hold (shift 0).
        merged = merge_traces([doc])
        stats = validate_joins(merged)
        assert stats["joined"] == result.pictures
        stages = waterfall(merged)
        for stage in ("e2e.decode", "e2e.wire", "e2e.reassemble"):
            assert stages[stage]["count"] >= result.pictures
        assert "deadline.lateness" in stages

    def test_server_pushes_stats_with_slo_snapshot(self):
        result, report = run(
            _serve_one(
                {"fps": 120.0, "stats_push_pictures": 3},
                {"stream": "two_gop"},
            )
        )
        assert result.complete
        assert result.server_stats, "no STATS frames pushed"
        for push in result.server_stats:
            assert push["src"] == "server"
            assert push["session"] == result.session
        slo = result.slo
        assert slo is not None
        assert slo["pictures"] > 0
        assert "burn_rate" in slo and "budget_spent" in slo
        # The server's connection record carries the final SLO verdict.
        (conn,) = report["connections"]
        assert conn["slo"]["pictures"] == result.pictures

    def test_push_off_by_default(self):
        result, _ = run(_serve_one({"fps": 120.0}, {"stream": "two_gop"}))
        assert result.server_stats == []

    def test_disconnect_dumps_flight_ring(self, tmp_path):
        async def scenario():
            srv = NetServer(
                STREAMS, workers=0, fps=30.0, flight_dir=str(tmp_path)
            )
            await srv.start()
            try:
                return await stream_session(
                    "127.0.0.1", srv.port, "long", disconnect_after=2,
                )
            finally:
                scenario.report = await srv.aclose()

        result = run(scenario())
        assert result.status == "disconnected"
        dumps = scenario.report["flight_dumps"]
        assert dumps, "no flight dump after forced disconnect"
        import json as _json

        with open(dumps[0]) as fh:
            doc = _json.load(fh)
        # The ring is discarded when a session completes cleanly, and a
        # fast decode can finish before the wire notices the hangup —
        # so only the disconnect event itself is guaranteed.
        kinds = [e["kind"] for e in doc["events"]]
        assert "net.disconnected" in kinds

    def test_report_carries_slo_policy_and_metrics_port(self):
        async def scenario():
            srv = NetServer(STREAMS, workers=0, fps=120.0, metrics_port=0)
            await srv.start()
            try:
                import urllib.request

                from repro.obs.export import parse_exposition

                await stream_session("127.0.0.1", srv.port, "two_gop")
                url = f"http://127.0.0.1:{srv.metrics_port}/metrics"
                body = await asyncio.to_thread(
                    lambda: urllib.request.urlopen(url, timeout=5)
                    .read()
                    .decode()
                )
                return parse_exposition(body)
            finally:
                scenario.report = await srv.aclose()

        series = run(scenario())
        # The registry is process-global (other tests in this run also
        # feed it), so assert presence/floor, not exact counts.
        assert series["repro_net_pictures_sent_total"] > 0
        assert series["repro_net_sessions_accepted_total"] >= 1
        policy = scenario.report["slo_policy"]
        assert policy["deadline_miss_budget"] == 0.05
