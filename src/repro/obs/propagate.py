"""Cross-boundary trace propagation: one timeline across the socket.

PR-3 gave every process a Chrome-trace tracer and PR-7 put the decoder
on a wire — but a picture's life now spans two processes and none of it
lines up in one view.  This module is the glue:

* ``new_trace_id`` mints the id a client sends in ``HELLO`` and the
  server echoes in ``ACCEPT`` so both sides tag their spans with the
  same session identity.
* ``ClockSync`` is the NTP-style two-timestamp handshake: the client
  stamps ``t_ns`` into HELLO, the server stamps receive/send times into
  ACCEPT, and the client stamps arrival.  ``offset_ns`` estimates
  ``server_clock - client_clock`` with error bounded by ``rtt_ns / 2``.
  On one host both sides read the same CLOCK_MONOTONIC, so the estimate
  collapses to ~0 and the rtt bound is the honest uncertainty.
* ``merge_traces`` joins independently exported Chrome docs (each
  carrying the ``baseTimeNs`` absolute timebase written by
  ``Tracer.to_chrome``) into ONE doc, shifting every client shard onto
  the server clock by the offset recorded in its ``clock.sync`` event.
* ``validate_joins`` proves the stitch: every client per-picture span
  must join a server wire span for the same ``(session, pic)``.
* ``waterfall`` aggregates the per-picture end-to-end stages
  (``decode → pace → wire → reassemble → conceal → deadline``) into the
  latency table obs_report prints in ``--merged`` mode.

Everything here is pure functions over trace documents — no sockets,
no clocks read at merge time — so the whole layer is testable from
committed fixtures.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from .trace import to_chrome

# Category shared by every cross-boundary span so obs_report can pick
# the end-to-end story out of a trace that also holds kernel spans.
E2E_CATEGORY = "e2e"

# Server-side per-picture stages.
SPAN_DECODE = "e2e.decode"  # submit/prev-ready -> frame ready at the sink
SPAN_PACE = "e2e.pace"  # sink ready -> display-rate send slot
SPAN_WIRE = "e2e.wire"  # first SLICE write -> PIC_DONE written

# Client-side per-picture stages.
SPAN_REASSEMBLE = "e2e.reassemble"  # first band arrival -> picture committed
SPAN_CONCEAL = "e2e.conceal"  # concealment of rows lost on the wire

# Client-side instants.
EVENT_DEADLINE = "e2e.deadline"  # display deadline hit; args carry late_ms
EVENT_CLOCK_SYNC = "clock.sync"  # handshake result; args carry offset/rtt

# Ordered stages of the per-picture waterfall (server then client).
WATERFALL_STAGES = (
    SPAN_DECODE,
    SPAN_PACE,
    SPAN_WIRE,
    SPAN_REASSEMBLE,
    SPAN_CONCEAL,
)


def new_trace_id() -> str:
    """Mint a 16-hex-char trace id for one client session."""

    return os.urandom(8).hex()


@dataclass(frozen=True)
class ClockSync:
    """Two-timestamp clock-offset handshake (client perspective).

    ``t_client_send_ns`` is stamped into HELLO, the server echoes its
    receive/send monotonic times in ACCEPT, and ``t_client_recv_ns`` is
    stamped when ACCEPT lands.  Standard NTP algebra then bounds the
    offset estimate by half the round trip.
    """

    t_client_send_ns: int
    t_server_recv_ns: int
    t_server_send_ns: int
    t_client_recv_ns: int

    @property
    def offset_ns(self) -> int:
        """Estimated ``server_clock - client_clock`` in nanoseconds."""

        forward = self.t_server_recv_ns - self.t_client_send_ns
        backward = self.t_server_send_ns - self.t_client_recv_ns
        return (forward + backward) // 2

    @property
    def rtt_ns(self) -> int:
        """Round-trip time excluding server hold time; always >= 0."""

        total = self.t_client_recv_ns - self.t_client_send_ns
        held = self.t_server_send_ns - self.t_server_recv_ns
        return max(0, total - held)

    @property
    def error_bound_ns(self) -> int:
        """Worst-case ``|true offset - offset_ns|``: half the rtt."""

        return self.rtt_ns // 2 + 1

    def to_json(self) -> dict[str, int]:
        return {
            "offset_ns": self.offset_ns,
            "rtt_ns": self.rtt_ns,
            "error_bound_ns": self.error_bound_ns,
        }


class TraceJoinError(ValueError):
    """A merged trace failed cross-boundary join validation."""


def _require_base(doc: Mapping[str, Any], label: str) -> int:
    base = doc.get("baseTimeNs")
    if not isinstance(base, int):
        raise ValueError(
            f"trace {label!r} has no baseTimeNs — it was exported before "
            "trace propagation existed and cannot be merged; re-record it"
        )
    return base


def doc_clock_offset_ns(doc: Mapping[str, Any]) -> int:
    """Clock offset recorded in a shard's ``clock.sync`` events.

    A client shard carries one ``clock.sync`` instant per session; the
    mean of their offsets maps the shard onto the server clock.  A doc
    with no sync events (the server's own shard, or an in-process run
    where both sides already share a tracer) shifts by zero.
    """

    offsets = [
        int(event.get("args", {}).get("offset_ns", 0))
        for event in doc.get("traceEvents", ())
        if event.get("name") == EVENT_CLOCK_SYNC and event.get("ph") == "i"
    ]
    if not offsets:
        return 0
    return sum(offsets) // len(offsets)


def merge_traces(docs: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge exported Chrome docs into one on the first doc's clock.

    The first document is the reference (by convention the server
    shard); every subsequent document is shifted onto the reference
    clock by the offset its own ``clock.sync`` events recorded.  Each
    doc must carry ``baseTimeNs`` (written by ``Tracer.to_chrome``) so
    its relative microsecond timestamps can be restored to absolute
    nanoseconds before merging.
    """

    if not docs:
        raise ValueError("merge_traces needs at least one trace document")
    raw: list[dict[str, Any]] = []
    for index, doc in enumerate(docs):
        base = _require_base(doc, f"doc[{index}]")
        shift = 0 if index == 0 else doc_clock_offset_ns(doc)
        for event in doc.get("traceEvents", ()):
            out = dict(event)
            if out.get("ph") != "M":
                out["ts"] = base + float(out.get("ts", 0)) * 1000.0 + shift
                if "dur" in out:
                    out["dur"] = float(out["dur"]) * 1000.0
            raw.append(out)
    return to_chrome(raw)


def e2e_events(doc: Mapping[str, Any], name: str) -> list[dict[str, Any]]:
    """All events of one e2e span/instant name in a trace doc."""

    return [
        event
        for event in doc.get("traceEvents", ())
        if event.get("name") == name and event.get("cat") == E2E_CATEGORY
    ]


def _pic_key(event: Mapping[str, Any]) -> tuple[Any, Any]:
    args = event.get("args", {})
    return (args.get("session"), args.get("pic"))


def validate_joins(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Check every client picture span joins a server wire span.

    Returns a summary dict on success; raises :class:`TraceJoinError`
    listing the orphaned ``(session, pic)`` keys otherwise.  The merged
    trace must contain at least one client span to validate — a trace
    with no ``e2e.reassemble`` spans fails loudly rather than passing
    vacuously.
    """

    server_keys = {_pic_key(e) for e in e2e_events(doc, SPAN_WIRE)}
    client_spans = e2e_events(doc, SPAN_REASSEMBLE)
    if not client_spans:
        raise TraceJoinError(
            "merged trace holds no client e2e.reassemble spans — nothing "
            "crossed the boundary, so there is no join to validate"
        )
    orphans = sorted(
        {_pic_key(e) for e in client_spans if _pic_key(e) not in server_keys},
        key=repr,
    )
    if orphans:
        raise TraceJoinError(
            f"{len(orphans)} client picture span(s) have no matching "
            f"server e2e.wire span: {orphans[:8]}"
        )
    client_pids = {e.get("pid") for e in client_spans}
    server_pids = {e.get("pid") for e in e2e_events(doc, SPAN_WIRE)}
    return {
        "client_spans": len(client_spans),
        "server_spans": len(server_keys),
        "joined": len({_pic_key(e) for e in client_spans}),
        "client_pids": sorted(client_pids),
        "server_pids": sorted(server_pids),
    }


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    pos = q * (len(sorted_vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def _stage_stats(durs_ms: list[float]) -> dict[str, float]:
    durs_ms.sort()
    count = len(durs_ms)
    return {
        "count": count,
        "mean_ms": sum(durs_ms) / count if count else 0.0,
        "p50_ms": _percentile(durs_ms, 0.50),
        "p99_ms": _percentile(durs_ms, 0.99),
        "max_ms": durs_ms[-1] if count else 0.0,
    }


def waterfall(doc: Mapping[str, Any]) -> dict[str, dict[str, float]]:
    """Aggregate per-picture stage durations across a merged trace.

    Maps each e2e stage name to ``{count, mean_ms, p50_ms, p99_ms,
    max_ms}``; the pseudo-stage ``deadline.lateness`` aggregates the
    ``late_ms`` args of ``e2e.deadline`` instants (clamped at 0 for
    early pictures, so it reads as lateness, not slack).
    """

    table: dict[str, dict[str, float]] = {}
    for stage in WATERFALL_STAGES:
        durs = [e.get("dur", 0) / 1000.0 for e in e2e_events(doc, stage)]
        if durs:
            table[stage] = _stage_stats(durs)
    late = [
        max(0.0, float(e.get("args", {}).get("late_ms", 0.0)))
        for e in e2e_events(doc, EVENT_DEADLINE)
    ]
    if late:
        table["deadline.lateness"] = _stage_stats(late)
    return table


def clock_syncs(doc: Mapping[str, Any]) -> list[dict[str, Any]]:
    """All ``clock.sync`` handshake results recorded in a trace doc."""

    return [
        dict(event.get("args", {}))
        for event in doc.get("traceEvents", ())
        if event.get("name") == EVENT_CLOCK_SYNC and event.get("ph") == "i"
    ]


def sessions_in(doc: Mapping[str, Any]) -> list[Any]:
    """Distinct session ids appearing in e2e events, sorted."""

    found = {
        e.get("args", {}).get("session")
        for e in doc.get("traceEvents", ())
        if e.get("cat") == E2E_CATEGORY
    }
    found.discard(None)
    return sorted(found, key=repr)
