"""Tracer unit tests: schema, export normalization, ring, shards."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    DEFAULT_CAPACITY,
    NULL_SPAN,
    REQUIRED_EVENT_KEYS,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    to_chrome,
    trace_complete,
    trace_counter,
    trace_instant,
    trace_span,
    tracing_enabled,
    validate_chrome_trace,
)


class TestEvents:
    def test_span_records_complete_event_with_required_keys(self):
        tracer = Tracer()
        with tracer.span("work", cat="test", args={"k": 1}):
            pass
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["args"] == {"k": 1}
        assert event["dur"] >= 0
        for key in REQUIRED_EVENT_KEYS:
            assert key in event

    def test_every_event_kind_has_required_keys(self):
        tracer = Tracer(process_name="p")
        tracer.complete("c", "test", 100, 50)
        tracer.instant("i", "test")
        tracer.counter("n", 3.0)
        for event in tracer.events:
            for key in REQUIRED_EVENT_KEYS:
                assert key in event, (key, event)

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.complete("c", "test", 100, -5)
        (event,) = tracer.events
        assert event["dur"] == 0

    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in tracer.events]
        assert names == ["inner", "outer"]  # completion order


class TestRingBuffer:
    def test_capacity_bounds_memory_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.complete(f"e{i}", "test", i, 1)
        assert len(tracer.events) == 4
        assert tracer.dropped == 6
        # Oldest events are forgotten, newest kept.
        assert [e["name"] for e in tracer.events] == ["e6", "e7", "e8", "e9"]

    def test_default_capacity(self):
        assert Tracer().capacity == DEFAULT_CAPACITY


class TestChromeExport:
    def test_timestamps_rebased_to_microseconds(self):
        tracer = Tracer()
        tracer.complete("a", "test", 5_000_000, 2_000)
        tracer.complete("b", "test", 7_000_000, 1_000)
        doc = to_chrome(tracer.events)
        a, b = doc["traceEvents"]
        assert a["ts"] == 0.0  # rebased to the earliest event
        assert a["dur"] == 2.0  # ns -> us
        assert b["ts"] == 2_000.0
        assert doc["displayTimeUnit"] == "ms"

    def test_events_sorted_by_timestamp(self):
        tracer = Tracer()
        tracer.complete("late", "test", 9_000, 10)
        tracer.complete("early", "test", 1_000, 10)
        doc = to_chrome(tracer.events)
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["early", "late"]

    def test_metadata_sorts_first_and_keeps_ts_zero(self):
        tracer = Tracer(process_name="main")
        tracer.complete("x", "test", 123_456, 10)
        doc = to_chrome(tracer.events)
        first = doc["traceEvents"][0]
        assert first["ph"] == "M"
        assert first["ts"] == 0
        validate_chrome_trace(doc)

    def test_write_chrome_roundtrips_through_json(self, tmp_path):
        tracer = Tracer(process_name="main")
        with tracer.span("work"):
            pass
        path = tmp_path / "trace.json"
        doc = tracer.write_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == doc
        validate_chrome_trace(loaded)


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})

    def test_rejects_event_missing_required_key(self):
        for key in REQUIRED_EVENT_KEYS:
            event = {"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "x"}
            del event[key]
            with pytest.raises(ValueError, match=key):
                validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_negative_duration(self):
        event = {
            "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1, "name": "x"
        }
        with pytest.raises(ValueError, match="negative dur"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_accepts_valid_document(self):
        tracer = Tracer(process_name="p")
        with tracer.span("a"):
            pass
        tracer.instant("i")
        events = validate_chrome_trace(to_chrome(tracer.events))
        assert len(events) == 3


class TestShards:
    def test_write_read_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.complete("a", "test", 100, 10)
        tracer.complete("b", "test", 200, 10)
        path = tmp_path / "shard.jsonl"
        assert tracer.write_shard(str(path)) == 2
        assert len(tracer.events) == 0  # flushed
        events = Tracer.read_shard(str(path))
        assert [e["name"] for e in events] == ["a", "b"]

    def test_write_appends_across_flushes(self, tmp_path):
        tracer = Tracer()
        path = tmp_path / "shard.jsonl"
        tracer.complete("first", "test", 100, 10)
        tracer.write_shard(str(path))
        tracer.complete("second", "test", 200, 10)
        tracer.write_shard(str(path))
        assert [e["name"] for e in Tracer.read_shard(str(path))] == [
            "first", "second",
        ]

    def test_empty_flush_writes_nothing(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        assert Tracer().write_shard(str(path)) == 0
        assert not path.exists()

    def test_merged_shards_export_monotonically(self, tmp_path):
        """Shards from different 'processes' interleave consistently."""
        parent = Tracer()
        parent.complete("parent.early", "test", 1_000, 100)
        parent.complete("parent.late", "test", 9_000, 100)
        worker = Tracer()
        worker.pid = parent.pid + 1  # simulate another process
        worker.complete("worker.mid", "test", 5_000, 100)
        shard = tmp_path / "shard.jsonl"
        worker.write_shard(str(shard))

        parent.extend(Tracer.read_shard(str(shard)))
        doc = to_chrome(parent.events)
        ts = [e["ts"] for e in doc["traceEvents"]]
        assert ts == sorted(ts)
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["parent.early", "worker.mid", "parent.late"]
        validate_chrome_trace(doc)


class TestModuleSwitchboard:
    def test_disabled_by_default_and_null_span_shared(self):
        assert not tracing_enabled()
        assert trace_span("x") is NULL_SPAN
        assert trace_span("y", cat="other", k=1) is NULL_SPAN

    def test_disabled_helpers_are_noops(self):
        trace_instant("i")
        trace_counter("c", 1.0)
        trace_complete("x", "test", 0, 1)
        assert get_tracer() is None

    def test_enable_then_disable(self):
        tracer = enable_tracing(process_name="t")
        assert tracing_enabled()
        assert get_tracer() is tracer
        with trace_span("work", k=2):
            pass
        assert any(e["name"] == "work" for e in tracer.events)
        disable_tracing()
        assert not tracing_enabled()
