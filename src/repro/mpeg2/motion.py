"""Motion estimation and half-pel motion compensation.

Motion vectors are in *half-pel* units throughout (MPEG-2 always codes
half-pel; the MPEG-1 ``full_pel`` flag is fixed to 0 in our streams).

The decoder-side operation, :func:`predict_block`, is shared verbatim
by the encoder's reconstruction loop, which is what makes encoder
references and decoder output bit-exact.

Estimation is classic full search over a clamped window with SAD,
followed by half-pel refinement — the same structure as the MPEG
Software Simulation Group encoder the paper used to create its
test streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


@dataclass(frozen=True)
class MotionVector:
    """A (dy, dx) displacement in half-pel units."""

    dy: int
    dx: int

    #: The zero vector (class attribute, assigned below the definition).
    ZERO: ClassVar["MotionVector"]

    def chroma(self) -> "MotionVector":
        """Chroma displacement: luma MV halved, truncated toward zero.

        (ISO 11172-2 2.4.4.2: ``right_half_for = trunc(recon/2)``.)
        """
        return MotionVector(int(self.dy / 2), int(self.dx / 2))

    def __add__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.dy + other.dy, self.dx + other.dx)


MotionVector.ZERO = MotionVector(0, 0)


# ----------------------------------------------------------------------
# motion compensation (decoder + encoder reconstruction)
# ----------------------------------------------------------------------
def predict_block(
    ref: np.ndarray, y0: int, x0: int, h: int, w: int, mv: MotionVector
) -> np.ndarray:
    """Fetch an ``h x w`` half-pel prediction at (y0, x0) + mv.

    Rounding follows the standard: half-pel averages use
    ``(a + b + 1) >> 1`` and ``(a + b + c + d + 2) >> 2``.

    The caller guarantees the displaced (and, for half-pel, +1 sample)
    window lies inside ``ref`` — the encoder clamps its search to make
    that so, and a compliant bitstream never violates it.  Violations
    raise rather than wrap around.
    """
    # Python divmod floors, so negative half-pel values decompose as
    # e.g. -3 -> (-2, 1): integer part floor(-1.5) with a +0.5 frac,
    # exactly the standard's decomposition.
    iy, fy = divmod(mv.dy, 2)
    ix, fx = divmod(mv.dx, 2)
    top, left = y0 + iy, x0 + ix
    need_h, need_w = h + (1 if fy else 0), w + (1 if fx else 0)
    if top < 0 or left < 0 or top + need_h > ref.shape[0] or left + need_w > ref.shape[1]:
        raise ValueError(
            f"motion vector {mv} displaces block ({y0},{x0},{h}x{w}) "
            f"outside reference plane {ref.shape}"
        )
    region = ref[top : top + need_h, left : left + need_w].astype(np.int32)
    if fy and fx:
        return (
            region[:-1, :-1] + region[:-1, 1:] + region[1:, :-1] + region[1:, 1:] + 2
        ) >> 2
    if fy:
        return (region[:-1, :] + region[1:, :] + 1) >> 1
    if fx:
        return (region[:, :-1] + region[:, 1:] + 1) >> 1
    return region


def average_predictions(fwd: np.ndarray, bwd: np.ndarray) -> np.ndarray:
    """B-picture bidirectional prediction: rounded average."""
    return (fwd.astype(np.int32) + bwd.astype(np.int32) + 1) >> 1


# ----------------------------------------------------------------------
# motion estimation (encoder)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MotionEstimate:
    """Result of a block search: best vector and its SAD."""

    mv: MotionVector
    sad: int


def full_search(
    cur: np.ndarray,
    ref: np.ndarray,
    y0: int,
    x0: int,
    search_range: int,
) -> MotionEstimate:
    """Exhaustive full-pel SAD search, then half-pel refinement.

    ``cur`` is the current macroblock (or block) at (y0, x0); the
    search window is ``+/- search_range`` full pels, clamped so all
    candidates (including the +1 sample of half-pel refinement) stay
    inside ``ref``.
    """
    h, w = cur.shape
    ref_h, ref_w = ref.shape
    # Full-pel displacement bounds; reserve one sample at the far edge
    # so half-pel refinement never leaves the plane.
    dy_min = max(-search_range, -y0)
    dy_max = min(search_range, ref_h - h - y0 - 1)
    dx_min = max(-search_range, -x0)
    dx_max = min(search_range, ref_w - w - x0 - 1)
    if dy_max < dy_min or dx_max < dx_min:
        # Degenerate window (block flush against both edges): zero MV.
        region = ref[y0 : y0 + h, x0 : x0 + w].astype(np.int32)
        sad = int(np.abs(region - cur.astype(np.int32)).sum())
        return MotionEstimate(MotionVector.ZERO, sad)

    window = ref[
        y0 + dy_min : y0 + dy_max + h, x0 + dx_min : x0 + dx_max + w
    ].astype(np.int32)
    candidates = sliding_window_view(window, (h, w))
    sads = np.abs(candidates - cur.astype(np.int32)).sum(axis=(2, 3))
    flat = int(np.argmin(sads))
    best_dy = dy_min + flat // sads.shape[1]
    best_dx = dx_min + flat % sads.shape[1]
    best_sad = int(sads.flat[flat])

    # Prefer the zero vector on ties within a small margin: cheaper to
    # code and lets the encoder emit skipped macroblocks.
    zero_ok = dy_min <= 0 <= dy_max and dx_min <= 0 <= dx_max
    if zero_ok:
        zero_sad = int(sads[-dy_min, -dx_min])
        if zero_sad <= best_sad:
            best_dy, best_dx, best_sad = 0, 0, zero_sad

    return _halfpel_refine(
        cur, ref, y0, x0, MotionVector(2 * best_dy, 2 * best_dx), best_sad,
        dy_min, dy_max, dx_min, dx_max,
    )


def _halfpel_refine(
    cur: np.ndarray,
    ref: np.ndarray,
    y0: int,
    x0: int,
    best: MotionVector,
    best_sad: int,
    dy_min: int,
    dy_max: int,
    dx_min: int,
    dx_max: int,
) -> MotionEstimate:
    """Evaluate the 8 half-pel neighbours of the full-pel optimum."""
    h, w = cur.shape
    cur32 = cur.astype(np.int32)
    best_mv = best
    for ddy in (-1, 0, 1):
        for ddx in (-1, 0, 1):
            if ddy == 0 and ddx == 0:
                continue
            mv = MotionVector(best.dy + ddy, best.dx + ddx)
            # Stay within the clamped full-pel window (conservative).
            if not (2 * dy_min <= mv.dy <= 2 * dy_max + 1):
                continue
            if not (2 * dx_min <= mv.dx <= 2 * dx_max + 1):
                continue
            pred = predict_block(ref, y0, x0, h, w, mv)
            sad = int(np.abs(pred - cur32).sum())
            if sad < best_sad:
                best_sad, best_mv = sad, mv
    return MotionEstimate(best_mv, best_sad)


def intra_activity(mb: np.ndarray) -> int:
    """Mean-removed activity of a macroblock (intra/inter decision).

    The classic mode-decision heuristic from the reference encoder:
    choose intra when the inter SAD exceeds the block's own deviation
    from its mean.
    """
    m = mb.astype(np.int32)
    return int(np.abs(m - int(m.mean())).sum())
