"""Deterministic discrete-event shared-memory multiprocessor simulator.

This package substitutes for the paper's hardware (a 16-processor SGI
Challenge; later a Stanford DASH) per the substitution note in
DESIGN.md.  Simulated *processes* are Python generators that yield
commands — compute for some cycles, acquire/release a lock, wait at a
barrier, wait on a condition — to a virtual-time engine.  The engine
accounts busy time, modelled memory-stall time, and blocked time per
process, which is exactly the decomposition the paper measures with
pixie/prof and source instrumentation.

Modules
-------
``engine``   the event loop, processes, and per-process statistics
``sync``     locks, barriers, conditions with wait-time accounting
``costs``    the R4400-calibrated cycle cost model
``machine``  machine configurations (Challenge SMP, DASH NUMA)
``memtrack`` time-series memory-allocation tracking (Figs. 8-9)
"""

from repro.smp.engine import (
    Simulator,
    Process,
    ProcessStats,
    Compute,
    Stall,
    AcquireLock,
    ReleaseLock,
    WaitCondition,
    SignalCondition,
    WaitBarrier,
    SleepUntil,
    Halt,
)
from repro.smp.sync import Lock, Condition, Barrier
from repro.smp.costs import CostModel, DEFAULT_COST_MODEL
from repro.smp.machine import MachineConfig, CHALLENGE, DASH, challenge, dash
from repro.smp.memtrack import MemoryTracker

__all__ = [
    "Simulator",
    "Process",
    "ProcessStats",
    "Compute",
    "Stall",
    "AcquireLock",
    "ReleaseLock",
    "WaitCondition",
    "SignalCondition",
    "WaitBarrier",
    "SleepUntil",
    "Halt",
    "Lock",
    "Condition",
    "Barrier",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "MachineConfig",
    "CHALLENGE",
    "DASH",
    "challenge",
    "dash",
    "MemoryTracker",
]
