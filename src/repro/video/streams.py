"""The paper's Table 1 test-stream matrix, with scaling for Python speed.

Table 1 crosses four resolutions with four GOP sizes (I/P distance 3,
30 pictures/sec, 5-7 Mb/s, 1120 pictures, one slice per macroblock
row).  Encoding 1120 pictures at 1408x960 in pure Python is hours of
work, so :func:`paper_stream_matrix` exposes two scale knobs —
``resolution_divisor`` and ``pictures`` — that preserve every
*structural* property the experiments depend on (slices/picture ratio
across resolutions, GOP size, picture-type mix).  EXPERIMENTS.md
records which scale each experiment ran at.  Encoded streams are
cached on disk keyed by their spec.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, replace

from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.video.synthetic import SyntheticVideo

#: The paper's four resolutions (Table 1), smallest to largest.
PAPER_RESOLUTIONS: dict[str, tuple[int, int]] = {
    "176x120": (176, 120),
    "352x240": (352, 240),
    "704x480": (704, 480),
    "1408x960": (1408, 960),
}

#: The paper's four GOP sizes (pictures per GOP).
PAPER_GOP_SIZES: tuple[int, ...] = (4, 13, 16, 31)

#: Bit rates per resolution (paper Section 3: 5 Mb/s for the two middle
#: sizes, 7 Mb/s for 1408x960; the paper omits the smallest from all
#: results — we give it a proportional 1.25 Mb/s).
PAPER_BIT_RATES: dict[str, int] = {
    "176x120": 1_250_000,
    "352x240": 5_000_000,
    "704x480": 5_000_000,
    "1408x960": 7_000_000,
}


@dataclass(frozen=True)
class TestStreamSpec:
    """One row of (our) Table 1: everything needed to build the stream."""

    __test__ = False  # not a pytest class despite the Test* name

    name: str
    width: int
    height: int
    gop_size: int
    pictures: int
    ip_distance: int = 3
    bit_rate: int = 5_000_000
    qscale_code: int = 2
    search_range: int = 7
    seed: int = 0
    pan_per_frame: float = 2.0
    #: Rate-controlled streams hold bits/picture ~constant across
    #: resolutions, like the paper's fixed-bit-rate streams; the decode
    #: cost of larger pictures then grows sub-linearly in pixels
    #: (Tables 3-4 shape).
    rate_controlled: bool = True

    def __post_init__(self) -> None:
        if self.pictures % self.gop_size != 0:
            raise ValueError(
                f"{self.name}: {self.pictures} pictures is not a whole "
                f"number of {self.gop_size}-picture GOPs"
            )

    @property
    def gop_count(self) -> int:
        return self.pictures // self.gop_size

    @property
    def slices_per_picture(self) -> int:
        """One slice per macroblock row, as in the paper's streams."""
        return (self.height + 15) // 16

    def cache_key(self) -> str:
        text = (
            f"{self.width}x{self.height}/g{self.gop_size}/n{self.pictures}"
            f"/m{self.ip_distance}/q{self.qscale_code}/r{self.search_range}"
            f"/s{self.seed}/p{self.pan_per_frame}/b{self.bit_rate}"
            f"/rc{int(self.rate_controlled)}/v4"
        )
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def encoder_config(self) -> EncoderConfig:
        target = None
        if self.rate_controlled:
            target = int(self.bit_rate / 30.0)
        return EncoderConfig(
            gop_size=self.gop_size,
            ip_distance=self.ip_distance,
            qscale_code=self.qscale_code,
            search_range=self.search_range,
            bit_rate=self.bit_rate,
            target_bits_per_picture=target,
        )

    def video(self) -> SyntheticVideo:
        return SyntheticVideo(
            width=self.width,
            height=self.height,
            pan_per_frame=self.pan_per_frame,
            seed=self.seed,
        )


def paper_stream_matrix(
    pictures: int | None = None,
    resolution_divisor: int = 1,
    gop_sizes: tuple[int, ...] = PAPER_GOP_SIZES,
    resolutions: dict[str, tuple[int, int]] | None = None,
) -> list[TestStreamSpec]:
    """Build the 16-stream Table 1 matrix (optionally scaled down).

    ``pictures`` defaults to the least common multiple of the GOP sizes
    (so every stream has whole GOPs); the paper used 1120 pictures.
    ``resolution_divisor`` divides each dimension (keeping the paper's
    2x ratios between adjacent resolutions intact).
    """
    resolutions = resolutions or PAPER_RESOLUTIONS
    specs: list[TestStreamSpec] = []
    for res_name, (w, h) in resolutions.items():
        for gop_size in gop_sizes:
            count = pictures if pictures is not None else _lcm(gop_sizes)
            count = _round_to_gops(count, gop_size)
            # Bit rate scales with pixel count when the resolution is
            # divided, keeping compression ratio (hence bits/pixel and
            # the parse/pixel work split) faithful to the paper.
            rate = PAPER_BIT_RATES.get(res_name, 5_000_000) // resolution_divisor**2
            specs.append(
                TestStreamSpec(
                    name=f"{res_name}/gop{gop_size}",
                    width=max(w // resolution_divisor, 16),
                    height=max(h // resolution_divisor, 16),
                    gop_size=gop_size,
                    pictures=count,
                    bit_rate=max(rate, 100_000),
                )
            )
    return specs


def _lcm(values: tuple[int, ...]) -> int:
    import math

    out = 1
    for v in values:
        out = out * v // math.gcd(out, v)
    return out


def _round_to_gops(pictures: int, gop_size: int) -> int:
    """Round up to a whole number of GOPs (at least one)."""
    gops = max((pictures + gop_size - 1) // gop_size, 1)
    return gops * gop_size


# ----------------------------------------------------------------------
# on-disk stream cache
# ----------------------------------------------------------------------
def default_cache_dir() -> str:
    return os.environ.get(
        "REPRO_STREAM_CACHE",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-streams"),
    )


def build_stream(
    spec: TestStreamSpec, cache_dir: str | None = None, use_cache: bool = True
) -> bytes:
    """Encode (or load from cache) the stream for ``spec``."""
    cache_dir = cache_dir or default_cache_dir()
    path = os.path.join(cache_dir, f"{spec.cache_key()}.m2v")
    if use_cache and os.path.exists(path):
        with open(path, "rb") as fh:
            return fh.read()
    video = spec.video()
    frames = video.frames(spec.pictures)
    data = encode_sequence(frames, spec.encoder_config())
    if use_cache:
        os.makedirs(cache_dir, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    return data
