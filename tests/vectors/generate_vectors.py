"""Regenerate the golden-vector conformance corpus.

Run from the repo root::

    PYTHONPATH=src python tests/vectors/generate_vectors.py

Writes ``<name>.m2v`` plus ``digests.json`` next to this script.  Each
vector is a tiny deterministic encode covering a distinct syntax
surface (I/P/B GOPs, multiple GOPs, alternate scan, all-intra, rate
control).  Digests are produced by the *scalar* engine — the
per-macroblock oracle — and cross-checked against the batched engine
and the mp decoder before anything is written, so a corpus that
disagrees with itself can never be committed.

Regenerating is an **intentional act**: if digests change, either the
codec's coded output changed (bump the reason in the commit message)
or something silently drifted (fix the bug instead).  The conformance
suite (``tests/mpeg2/test_golden_vectors.py``) exists to force that
conversation.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.parallel.mp import MPGopDecoder
from repro.video.synthetic import SyntheticVideo

VECTOR_DIR = os.path.dirname(os.path.abspath(__file__))
DIGEST_PATH = os.path.join(VECTOR_DIR, "digests.json")

#: The corpus: name -> (video parameters, encoder configuration).
#: Keep every stream tiny — the whole corpus must decode three ways in
#: a couple of seconds inside tier-1.
VECTORS: dict[str, dict] = {
    # The headline syntax mix: one closed 13-picture I/P/B GOP.
    "ipb_64x48_gop13": dict(
        width=64, height=48, seed=7, frames=13,
        config=dict(gop_size=13, qscale_code=3),
    ),
    # Two closed GOPs: exercises GOP boundaries and display merge.
    "two_gop_48x32": dict(
        width=48, height=32, seed=11, frames=8,
        config=dict(gop_size=4, qscale_code=3),
    ),
    # MPEG-2 alternate coefficient scan end-to-end.
    "altscan_48x32_gop7": dict(
        width=48, height=32, seed=21, frames=7,
        config=dict(gop_size=7, qscale_code=4, alternate_scan=True),
    ),
    # All-intra: two single-picture GOPs, smallest legal frame.
    "intra_16x16_gop1": dict(
        width=16, height=16, seed=2, frames=2,
        config=dict(gop_size=1, qscale_code=2),
    ),
    # Rate-controlled encode: adaptive quantiser path.
    "rc_64x48_gop4": dict(
        width=64, height=48, seed=5, frames=8,
        config=dict(gop_size=4, qscale_code=6, target_bits_per_picture=4000),
    ),
    # Non-mod-16 display size: coded-size padding + display crop.
    "pad_40x24_gop4": dict(
        width=40, height=24, seed=13, frames=4,
        config=dict(gop_size=4, qscale_code=3),
    ),
}


def build_vector(name: str, spec: dict) -> bytes:
    video = SyntheticVideo(
        width=spec["width"], height=spec["height"], seed=spec["seed"]
    )
    frames = video.frames(spec["frames"])
    return encode_sequence(frames, EncoderConfig(**spec["config"]))


def digests_for(data: bytes, **decoder_kwargs) -> list[str]:
    frames = SequenceDecoder(data, **decoder_kwargs).decode_all()
    return [f.digest() for f in frames]


def main() -> int:
    corpus: dict[str, dict] = {}
    for name, spec in VECTORS.items():
        data = build_vector(name, spec)
        golden = digests_for(data, engine="scalar")
        # Cross-check every decode path before committing anything.
        assert digests_for(data, engine="batched") == golden, name
        mp_frames = MPGopDecoder(data, workers=0).decode_all()
        assert [f.digest() for f in mp_frames] == golden, name

        path = os.path.join(VECTOR_DIR, f"{name}.m2v")
        with open(path, "wb") as fh:
            fh.write(data)
        corpus[name] = {
            "file": f"{name}.m2v",
            "stream_sha256": hashlib.sha256(data).hexdigest(),
            "stream_bytes": len(data),
            "width": spec["width"],
            "height": spec["height"],
            "pictures": spec["frames"],
            "frame_digests": golden,
        }
        print(f"{name}: {len(data)} bytes, {len(golden)} pictures")

    with open(DIGEST_PATH, "w") as fh:
        json.dump(
            {
                "format": 1,
                "digest": (
                    "sha256 over display-rect planes, each prefixed "
                    "'{rows}x{cols}:' (Frame.digest)"
                ),
                "streams": corpus,
            },
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")
    print(f"wrote {DIGEST_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
