"""Discrete-event engine: timing, locks, barriers, conditions."""

from __future__ import annotations

import pytest

from repro.smp import (
    AcquireLock,
    Barrier,
    Compute,
    Condition,
    Halt,
    Lock,
    ReleaseLock,
    SignalCondition,
    Simulator,
    Stall,
    WaitBarrier,
    WaitCondition,
)
from repro.smp.engine import DeadlockError


class TestCompute:
    def test_sequential_computes_accumulate(self):
        sim = Simulator()

        def body(proc):
            yield Compute(100)
            yield Compute(50)

        p = sim.add_process("p", body)
        sim.run()
        assert p.stats.busy == 150
        assert p.stats.finish_time == 150
        assert sim.now == 150

    def test_stall_accounted_separately(self):
        sim = Simulator()

        def body(proc):
            yield Compute(100)
            yield Stall(30)

        p = sim.add_process("p", body)
        sim.run()
        assert p.stats.ideal == 100
        assert p.stats.actual == 130
        assert p.stats.finish_time == 130

    def test_parallel_processes_overlap(self):
        sim = Simulator()

        def body(proc):
            yield Compute(1000)

        for i in range(4):
            sim.add_process(f"p{i}", body)
        sim.run()
        assert sim.now == 1000  # not 4000: they ran in parallel

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)
        with pytest.raises(ValueError):
            Stall(-5)


class TestLock:
    def test_mutual_exclusion_serialises(self):
        sim = Simulator()
        lock = Lock("l")
        order = []

        def body(proc):
            yield AcquireLock(lock)
            order.append((proc.name, sim.now, "in"))
            yield Compute(100)
            order.append((proc.name, sim.now, "out"))
            yield ReleaseLock(lock)

        sim.add_process("a", body)
        sim.add_process("b", body)
        sim.run()
        assert sim.now == 200  # critical sections serialised
        # No overlap: b enters only after a leaves.
        assert order == [
            ("a", 0, "in"), ("a", 100, "out"),
            ("b", 100, "in"), ("b", 200, "out"),
        ]
        assert lock.acquisitions == 2
        assert lock.contentions == 1

    def test_contended_wait_charged_as_sync(self):
        sim = Simulator()
        lock = Lock()

        def body(proc):
            yield AcquireLock(lock)
            yield Compute(100)
            yield ReleaseLock(lock)

        a = sim.add_process("a", body)
        b = sim.add_process("b", body)
        sim.run()
        assert a.stats.sync_wait + b.stats.sync_wait == 100

    def test_release_by_non_holder_rejected(self):
        sim = Simulator()
        lock = Lock()

        def body(proc):
            yield ReleaseLock(lock)

        sim.add_process("p", body)
        with pytest.raises(RuntimeError, match="released"):
            sim.run()

    def test_fifo_ordering(self):
        sim = Simulator()
        lock = Lock()
        entered = []

        def body(proc):
            yield Compute(int(proc.name))  # stagger arrivals
            yield AcquireLock(lock)
            entered.append(proc.name)
            yield Compute(50)
            yield ReleaseLock(lock)

        for i in range(5):
            sim.add_process(str(i), body)
        sim.run()
        assert entered == ["0", "1", "2", "3", "4"]


class TestBarrier:
    def test_all_wait_for_last(self):
        sim = Simulator()
        barrier = Barrier(3)
        release_times = []

        def body(proc, work):
            yield Compute(work)
            yield WaitBarrier(barrier)
            release_times.append(sim.now)

        sim.add_process("a", lambda p: body(p, 10))
        sim.add_process("b", lambda p: body(p, 500))
        sim.add_process("c", lambda p: body(p, 90))
        sim.run()
        assert release_times == [500, 500, 500]

    def test_sync_wait_is_imbalance(self):
        sim = Simulator()
        barrier = Barrier(2)

        def body(proc, work):
            yield Compute(work)
            yield WaitBarrier(barrier)

        fast = sim.add_process("fast", lambda p: body(p, 100))
        slow = sim.add_process("slow", lambda p: body(p, 900))
        sim.run()
        assert fast.stats.sync_wait == 800
        assert slow.stats.sync_wait == 0

    def test_barrier_is_reusable(self):
        sim = Simulator()
        barrier = Barrier(2)
        laps = []

        def body(proc, work):
            for lap in range(3):
                yield Compute(work)
                yield WaitBarrier(barrier)
                laps.append((proc.name, lap, sim.now))

        sim.add_process("a", lambda p: body(p, 100))
        sim.add_process("b", lambda p: body(p, 300))
        sim.run()
        assert sim.now == 900
        assert barrier.generation == 3

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            Barrier(0)


class TestCondition:
    def test_signal_wakes_all_waiters(self):
        sim = Simulator()
        cond = Condition()
        woken = []

        def waiter(proc):
            yield WaitCondition(cond)
            woken.append((proc.name, sim.now))

        def signaller(proc):
            yield Compute(250)
            yield SignalCondition(cond)

        sim.add_process("w1", waiter)
        sim.add_process("w2", waiter)
        sim.add_process("s", signaller)
        sim.run()
        assert woken == [("w1", 250), ("w2", 250)]

    def test_deadlock_detected(self):
        sim = Simulator()
        cond = Condition()

        def waiter(proc):
            yield WaitCondition(cond)

        sim.add_process("w", waiter)
        with pytest.raises(DeadlockError, match="w"):
            sim.run()

    def test_halt_terminates_process(self):
        sim = Simulator()

        def body(proc):
            yield Compute(10)
            yield Halt()
            yield Compute(1000)  # unreachable

        p = sim.add_process("p", body)
        sim.run()
        assert p.finished
        assert p.stats.busy == 10


class TestSleepUntil:
    def test_sleep_advances_to_absolute_time(self):
        from repro.smp import SleepUntil

        sim = Simulator()

        def body(proc):
            yield Compute(100)
            yield SleepUntil(5000)
            yield Compute(10)

        p = sim.add_process("p", body)
        sim.run()
        assert p.stats.finish_time == 5010
        assert p.stats.idle == 4900
        assert p.stats.busy == 110

    def test_sleep_into_past_is_noop(self):
        from repro.smp import SleepUntil

        sim = Simulator()

        def body(proc):
            yield Compute(1000)
            yield SleepUntil(50)  # already past
            yield Compute(10)

        p = sim.add_process("p", body)
        sim.run()
        assert p.stats.finish_time == 1010
        assert p.stats.idle == 0

    def test_sleep_does_not_block_others(self):
        from repro.smp import SleepUntil

        sim = Simulator()
        done = []

        def sleeper(proc):
            yield SleepUntil(10_000)
            done.append(("sleeper", sim.now))

        def worker(proc):
            yield Compute(500)
            done.append(("worker", sim.now))

        sim.add_process("s", sleeper)
        sim.add_process("w", worker)
        sim.run()
        assert done == [("worker", 500), ("sleeper", 10_000)]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def make_run():
            sim = Simulator()
            lock = Lock()
            cond = Condition()
            trace = []

            def worker(proc):
                for i in range(3):
                    yield AcquireLock(lock)
                    trace.append((proc.name, sim.now))
                    yield Compute(17 * (1 + int(proc.name)))
                    yield ReleaseLock(lock)
                    yield SignalCondition(cond)

            for i in range(4):
                sim.add_process(str(i), worker)
            sim.run()
            return trace, sim.now

        assert make_run() == make_run()
