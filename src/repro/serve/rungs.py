"""ABR rung ladder: cheaper encodings of the same content, profiled.

The paper's Table 1 profiles the decode cost of the same material at a
ladder of resolutions — the observation behind adaptive-bitrate
serving: a half-resolution encoding of a stream is a *complete*
decode at roughly a quarter of the IDCT/MC work, so an overloaded
service can downshift a session's rung and still emit every picture,
where dropping B pictures emits fewer.  :func:`build_rung_ladder`
realises that ladder with the repo's own encoder: decode the source,
box-downsample each frame by 2 per rung, re-encode with the *same GOP
structure* (so rung N's GOP ``g`` covers exactly the source's GOP
``g`` — the property the mid-stream-join rung switch relies on), and
profile each rung's wire cost with
:func:`repro.analysis.bandwidth.profile_stream`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bandwidth import BandwidthProfile, profile_stream
from repro.mpeg2.constants import PictureType
from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import StreamIndex, build_index


@dataclass(frozen=True)
class Rung:
    """One ladder entry: a coded stream + its measured cost shape."""

    level: int
    width: int
    height: int
    data: bytes
    profile: BandwidthProfile

    def to_json(self) -> dict:
        return {
            "level": self.level,
            "width": self.width,
            "height": self.height,
            "stream_bytes": len(self.data),
            "mean_bps": self.profile.mean_bps,
            "peak_bps": self.profile.peak_bps,
            "burstiness": self.profile.burstiness,
        }


def downscale_frame(frame: Frame, factor: int = 2) -> Frame:
    """Box-filter ``frame`` down by ``factor`` in each dimension."""
    w, h = frame.display_width, frame.display_height
    if w % (2 * factor) or h % (2 * factor):
        raise ValueError(
            f"display size {w}x{h} not divisible by {2 * factor}; "
            "cannot downscale exactly (4:2:0 chroma needs even planes)"
        )

    def box(plane: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
        view = plane[: out_h * factor, : out_w * factor]
        return (
            view.reshape(out_h, factor, out_w, factor)
            .mean(axis=(1, 3))
            .round()
            .astype(np.uint8)
        )

    y = box(frame.y, h // factor, w // factor)
    cb = box(frame.cb, h // (2 * factor), w // (2 * factor))
    cr = box(frame.cr, h // (2 * factor), w // (2 * factor))
    out = Frame.from_planes(y, cb, cr)
    out.temporal_reference = frame.temporal_reference
    return out


def _gop_structure(index: StreamIndex) -> tuple[int, int]:
    """(gop_size, ip_distance) of the source, read off the scan index."""
    gop_size = len(index.gops[0].pictures)
    ip = 1
    saw_ref = False
    for pic in index.gops[0].pictures:
        if pic.picture_type.is_reference:
            if saw_ref:
                break
            saw_ref = True
        elif saw_ref:
            ip += 1
    return gop_size, ip


def build_rung_ladder(
    data: bytes,
    levels: int = 1,
    fps: float = 30.0,
    qscale_code: int | None = None,
    index: StreamIndex | None = None,
) -> list[Rung]:
    """Encode ``levels`` successively half-resolution rungs of ``data``.

    Rung ``k`` is the source downscaled by ``2**k`` and re-encoded
    with the source's own GOP size and I/P distance, so every rung
    partitions its pictures into GOPs identically to the source —
    a rung switch at GOP ``g`` of one rung resumes at GOP ``g`` of the
    next with no picture gained or lost.  Returns rungs in descending
    cost order (the order :class:`~repro.serve.session.StreamSession`
    consumes them in).
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    idx = index if index is not None else build_index(data)
    gop_size, ip_distance = _gop_structure(idx)
    frames = SequenceDecoder(data, index=idx).decode_all()
    intra_only = all(
        p.picture_type is PictureType.I for g in idx.gops for p in g.pictures
    )
    rungs: list[Rung] = []
    for level in range(1, levels + 1):
        frames = [downscale_frame(f) for f in frames]
        config = EncoderConfig(
            gop_size=gop_size,
            ip_distance=1 if intra_only else ip_distance,
            qscale_code=(
                qscale_code if qscale_code is not None else 3
            ),
            frame_rate_code=5,
        )
        coded = encode_sequence(frames, config)
        rungs.append(
            Rung(
                level=level,
                width=frames[0].display_width,
                height=frames[0].display_height,
                data=coded,
                profile=profile_stream(coded, fps=fps),
            )
        )
    return rungs
