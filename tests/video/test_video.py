"""Synthetic video generator, stream matrix, and metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.mpeg2.frame import Frame
from repro.video.metrics import psnr, sequence_psnr
from repro.video.streams import (
    PAPER_GOP_SIZES,
    PAPER_RESOLUTIONS,
    TestStreamSpec,
    build_stream,
    paper_stream_matrix,
)
from repro.video.synthetic import SyntheticVideo


class TestSyntheticVideo:
    def test_deterministic(self):
        a = SyntheticVideo(48, 32, seed=5).frame(3)
        b = SyntheticVideo(48, 32, seed=5).frame(3)
        assert a.same_pixels(b)

    def test_seed_changes_content(self):
        a = SyntheticVideo(48, 32, seed=5).frame(3)
        b = SyntheticVideo(48, 32, seed=6).frame(3)
        assert not a.same_pixels(b)

    def test_pan_moves_content(self):
        vid = SyntheticVideo(64, 48, seed=1, noise_amplitude=0.0,
                             pan_per_frame=3.0, tilt_per_frame=0.0)
        f0, f1 = vid.luma(0), vid.luma(1)
        # Frame 1 shifted back by the pan must match frame 0 (textures
        # are translation-invariant; sky band is y-only so unaffected).
        assert np.array_equal(f1[:, :-3], f0[:, 3:])

    def test_sky_band_is_flat(self):
        vid = SyntheticVideo(64, 64, seed=2, noise_amplitude=0.0)
        y = vid.luma(0)
        sky_var = float(np.var(y[:8].astype(np.float64)))
        garden_var = float(np.var(y[-16:].astype(np.float64)))
        assert garden_var > 10 * sky_var

    def test_values_in_video_range(self):
        vid = SyntheticVideo(48, 32, seed=3)
        y = vid.luma(7)
        cb, cr = vid.chroma(7)
        for plane in (y, cb, cr):
            assert plane.min() >= 16
            assert plane.max() <= 240

    def test_frames_returns_padded_frames(self):
        frames = SyntheticVideo(40, 24, seed=1).frames(2)
        assert all(isinstance(f, Frame) for f in frames)
        assert frames[0].coded_width == 48
        assert frames[1].temporal_reference == 1


class TestStreamSpecs:
    def test_paper_matrix_is_16_streams(self):
        specs = paper_stream_matrix(pictures=124)
        assert len(specs) == 16
        names = {s.name for s in specs}
        assert "352x240/gop13" in names
        assert "1408x960/gop31" in names

    def test_whole_gops(self):
        for spec in paper_stream_matrix(pictures=100):
            assert spec.pictures % spec.gop_size == 0
            assert spec.pictures >= 100

    def test_slices_per_picture_matches_paper(self):
        """Table 1: 8 / 15 / 30 / 60 slices for the four resolutions."""
        by_res = {}
        for spec in paper_stream_matrix(pictures=4, gop_sizes=(4,)):
            by_res[f"{spec.width}x{spec.height}"] = spec.slices_per_picture
        assert by_res == {
            "176x120": 8, "352x240": 15, "704x480": 30, "1408x960": 60
        }

    def test_resolution_divisor(self):
        specs = paper_stream_matrix(pictures=4, resolution_divisor=4,
                                    gop_sizes=(4,))
        sizes = {(s.width, s.height) for s in specs}
        assert (88, 60) in sizes
        assert (352, 240) in sizes

    def test_cache_key_distinguishes_specs(self):
        a = TestStreamSpec("a", 48, 32, 4, 4)
        b = TestStreamSpec("b", 48, 32, 4, 4, qscale_code=5)
        c = TestStreamSpec("c", 48, 32, 4, 8)
        assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 3

    def test_partial_gop_spec_rejected(self):
        with pytest.raises(ValueError):
            TestStreamSpec("bad", 48, 32, gop_size=13, pictures=20)

    def test_build_stream_caches(self, tmp_path):
        spec = TestStreamSpec("t", 48, 32, gop_size=4, pictures=4,
                              qscale_code=4)
        first = build_stream(spec, cache_dir=str(tmp_path))
        assert (tmp_path / f"{spec.cache_key()}.m2v").exists()
        second = build_stream(spec, cache_dir=str(tmp_path))
        assert first == second

    def test_gop_sizes_match_paper(self):
        assert PAPER_GOP_SIZES == (4, 13, 16, 31)
        assert list(PAPER_RESOLUTIONS) == [
            "176x120", "352x240", "704x480", "1408x960"
        ]


class TestMetrics:
    def test_identical_frames_inf(self):
        f = SyntheticVideo(32, 32, seed=1).frame(0)
        assert math.isinf(psnr(f, f))

    def test_known_mse(self):
        a = Frame.blank(32, 32)
        b = Frame.blank(32, 32)
        b.y[:32, :32] += 10  # MSE 100 over the display area
        assert psnr(a, b) == pytest.approx(10 * math.log10(255**2 / 100))

    def test_sequence_psnr_requires_equal_lengths(self):
        f = Frame.blank(32, 32)
        with pytest.raises(ValueError):
            sequence_psnr([f], [f, f])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            psnr(Frame.blank(32, 32), Frame.blank(48, 32))
