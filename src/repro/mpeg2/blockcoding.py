"""Block layer: DC prediction + run/level coding of DCT coefficients.

A coded block is serialised as (intra blocks) a DC size/differential
pair followed by run/level AC codes, or (non-intra blocks) run/level
codes from coefficient 0 — terminated by EOB.  Rare (run, level) pairs
use the escape mechanism: 6-bit run + 12-bit signed level, exactly the
MPEG-2 single-escape format.

All functions work on *scan-ordered* 64-vectors; zig-zag (un)scanning
happens in the macroblock layer.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.constants import LEVEL_MAX, LEVEL_MIN
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.tables import (
    AC_CODED_PAIRS,
    AC_RUN_LEVEL,
    EOB,
    ESCAPE,
    ESCAPE_LEVEL_BITS,
    ESCAPE_RUN_BITS,
    MAX_DC_SIZE,
    VLCTable,
)


class BlockSyntaxError(Exception):
    """Raised on impossible coefficient positions or level values."""


# ----------------------------------------------------------------------
# DC differential (intra blocks)
# ----------------------------------------------------------------------
def encode_dc_differential(
    w: BitWriter, dc: int, predictor: int, table: VLCTable
) -> int:
    """Code ``dc - predictor``; returns the new predictor (== dc).

    The magnitude bits follow the standard's convention: positive
    differentials are coded as-is; negative ones as the one's
    complement of the magnitude (so the MSB doubles as a sign flag).
    """
    diff = dc - predictor
    size = abs(diff).bit_length()
    if size > MAX_DC_SIZE:
        raise BlockSyntaxError(f"DC differential {diff} too large")
    table.encode(w, size)
    if size:
        if diff > 0:
            w.write_bits(diff, size)
        else:
            w.write_bits((-diff) ^ ((1 << size) - 1), size)
    return dc


def decode_dc_differential(
    r: BitReader, predictor: int, table: VLCTable, counters: WorkCounters
) -> int:
    """Decode one DC differential and return the reconstructed DC."""
    size = table.decode(r)
    counters.vlc_symbols += 1
    if size == 0:
        return predictor
    raw = r.read_bits(size)
    if raw & (1 << (size - 1)):
        diff = raw
    else:
        diff = -(raw ^ ((1 << size) - 1))
    return predictor + diff


# ----------------------------------------------------------------------
# AC run/level coding
# ----------------------------------------------------------------------
def encode_run_level(w: BitWriter, run: int, level: int) -> None:
    """Emit one (run, level) pair, using the escape when needed."""
    if level == 0:
        raise BlockSyntaxError("level 0 cannot be coded as a run/level pair")
    if not LEVEL_MIN <= level <= LEVEL_MAX:
        raise BlockSyntaxError(f"level {level} outside escape-codable range")
    pair = (run, abs(level))
    if pair in AC_CODED_PAIRS:
        AC_RUN_LEVEL.encode(w, pair)
        w.write_bit(1 if level < 0 else 0)
    else:
        AC_RUN_LEVEL.encode(w, ESCAPE)
        w.write_bits(run, ESCAPE_RUN_BITS)
        w.write_bits(level & ((1 << ESCAPE_LEVEL_BITS) - 1), ESCAPE_LEVEL_BITS)


def encode_block(
    w: BitWriter,
    scanned: np.ndarray,
    *,
    intra: bool,
    dc_table: VLCTable | None = None,
    dc_predictor: int = 0,
) -> int:
    """Serialise one scan-ordered 64-vector of quantized levels.

    Intra blocks code coefficient 0 as a DC differential against
    ``dc_predictor`` (returns the new predictor); non-intra blocks
    code all 64 coefficients as run/levels.  Returns the new DC
    predictor for intra blocks, 0 otherwise.
    """
    start = 0
    new_pred = 0
    if intra:
        if dc_table is None:
            raise ValueError("intra blocks need a DC size table")
        new_pred = encode_dc_differential(w, int(scanned[0]), dc_predictor, dc_table)
        start = 1
    run = 0
    for k in range(start, 64):
        level = int(scanned[k])
        if level == 0:
            run += 1
        else:
            encode_run_level(w, run, level)
            run = 0
    AC_RUN_LEVEL.encode(w, EOB)
    return new_pred


def decode_block(
    r: BitReader,
    *,
    intra: bool,
    dc_table: VLCTable | None = None,
    dc_predictor: int = 0,
    counters: WorkCounters,
) -> tuple[np.ndarray, int]:
    """Decode one block into a scan-ordered 64-vector of levels.

    Returns ``(levels, new_dc_predictor)``; the predictor is only
    meaningful for intra blocks.
    """
    levels = np.zeros(64, dtype=np.int64)
    k = 0
    new_pred = 0
    if intra:
        if dc_table is None:
            raise ValueError("intra blocks need a DC size table")
        new_pred = decode_dc_differential(r, dc_predictor, dc_table, counters)
        levels[0] = new_pred
        k = 1
    while True:
        sym = AC_RUN_LEVEL.decode(r)
        counters.vlc_symbols += 1
        if sym == EOB:
            return levels, new_pred
        if sym == ESCAPE:
            run = r.read_bits(ESCAPE_RUN_BITS)
            raw = r.read_bits(ESCAPE_LEVEL_BITS)
            level = raw - (1 << ESCAPE_LEVEL_BITS) if raw & (1 << (ESCAPE_LEVEL_BITS - 1)) else raw
            if level == 0:
                raise BlockSyntaxError("escape-coded level of 0")
        else:
            run, mag = sym
            level = -mag if r.read_bit() else mag
        k += run
        if k >= 64:
            raise BlockSyntaxError(
                f"coefficient index {k} past end of block (run {run})"
            )
        levels[k] = level
        k += 1
        counters.coefficients += 1
