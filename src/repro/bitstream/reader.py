"""MSB-first bit reader used by the decoders.

Decoding MPEG requires three access patterns, all provided here:

* sequential ``read_bits`` for fixed-length fields,
* ``peek_bits`` for table-driven VLC decode (look at up to *n* bits,
  then consume only the matched codeword length),
* byte alignment + start-code resynchronisation for the slice layer.

The reader also counts the bits it hands out (``bits_consumed``), which
feeds the paper-calibrated cycle cost model: bitstream parsing cost in
the paper is proportional to the stream's bit rate, not the pixel rate.
"""

from __future__ import annotations


class BitstreamError(Exception):
    """Raised on malformed or truncated bitstream input."""


class BitReader:
    """Read an MSB-first bit string from ``bytes``.

    Parameters
    ----------
    data:
        The backing buffer.  It is not copied; treat it as immutable.
    start_bit:
        Bit offset at which reading starts (default 0).
    """

    __slots__ = ("_data", "_pos", "_nbits")

    def __init__(self, data: bytes, start_bit: int = 0) -> None:
        self._data = data
        self._nbits = len(data) * 8
        if not 0 <= start_bit <= self._nbits:
            raise ValueError(f"start_bit {start_bit} out of range")
        self._pos = start_bit

    # ------------------------------------------------------------------
    # position management
    # ------------------------------------------------------------------
    @property
    def bit_position(self) -> int:
        """Current absolute bit offset from the start of the buffer."""
        return self._pos

    @bit_position.setter
    def bit_position(self, pos: int) -> None:
        if not 0 <= pos <= self._nbits:
            raise ValueError(f"bit position {pos} out of range")
        self._pos = pos

    @property
    def bits_remaining(self) -> int:
        return self._nbits - self._pos

    @property
    def is_aligned(self) -> bool:
        return self._pos % 8 == 0

    def align(self) -> None:
        """Skip forward to the next byte boundary (no-op if aligned)."""
        self._pos = (self._pos + 7) & ~7

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_bits(self, nbits: int) -> int:
        """Consume and return ``nbits`` bits as an unsigned integer."""
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if nbits == 0:
            return 0
        pos = self._pos
        end = pos + nbits
        if end > self._nbits:
            raise BitstreamError(
                f"read past end of stream (want {nbits} bits at {pos}, "
                f"have {self._nbits - pos})"
            )
        first = pos >> 3
        last = (end + 7) >> 3
        chunk = int.from_bytes(self._data[first:last], "big")
        shift = last * 8 - end
        self._pos = end
        return (chunk >> shift) & ((1 << nbits) - 1)

    def peek_bits(self, nbits: int) -> int:
        """Return the next ``nbits`` bits without consuming them.

        Bits past the end of the buffer read as zero — this lets
        table-driven VLC decoders peek a fixed window near the stream
        tail; an actual overrun is then caught when the decoded length
        is consumed with :meth:`read_bits`.
        """
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if nbits == 0:
            return 0
        pos = self._pos
        end = pos + nbits
        pad = 0
        if end > self._nbits:
            pad = end - self._nbits
            end = self._nbits
        first = pos >> 3
        last = (end + 7) >> 3
        chunk = int.from_bytes(self._data[first:last], "big")
        shift = last * 8 - end
        got = end - pos
        val = (chunk >> shift) & ((1 << got) - 1) if got else 0
        return val << pad

    def read_bit(self) -> int:
        return self.read_bits(1)

    def skip_bits(self, nbits: int) -> None:
        if self._pos + nbits > self._nbits:
            raise BitstreamError("skip past end of stream")
        self._pos += nbits

    def read_signed(self, nbits: int) -> int:
        """Read a two's-complement signed value of ``nbits`` bits."""
        raw = self.read_bits(nbits)
        sign = 1 << (nbits - 1)
        return raw - (1 << nbits) if raw & sign else raw

    # ------------------------------------------------------------------
    # start-code resynchronisation
    # ------------------------------------------------------------------
    def next_start_code(self) -> int | None:
        """Align and scan forward to the next ``00 00 01 xx`` pattern.

        Positions the reader *after* the 4-byte start code and returns
        the code value ``xx``, or returns ``None`` (reader at EOF) if no
        further start code exists.
        """
        self.align()
        data = self._data
        i = self._pos >> 3
        n = len(data)
        while True:
            j = data.find(b"\x00\x00\x01", i)
            if j < 0 or j + 3 >= n:
                self._pos = self._nbits
                return None
            self._pos = (j + 4) * 8
            return data[j + 3]

    def at_start_code(self) -> bool:
        """True if the (aligned) reader is positioned at a start code."""
        if self._pos % 8:
            return False
        i = self._pos >> 3
        return self._data[i : i + 3] == b"\x00\x00\x01"
