"""Figure 15 — capacity misses relative to cold misses vs cache size.

Paper: beyond the (small) working set, the number of capacity misses
is small compared to cold misses — so larger caches buy little, and
the working set does not grow with picture size or processor count.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.cache import CacheConfig, generate_decode_trace, simulate

from benchmarks.conftest import PAPER_CASES

CAPACITIES = [8 << 10, 32 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20]
TRACE_PICTURES = 7


def test_fig15_capacity_over_cold(benchmark, env, record):
    res = next(iter(PAPER_CASES))
    data = env.stream(res, 13)

    def run():
        out = {}
        for procs in (1, 8):
            trace = generate_decode_trace(
                data, processors=procs, max_pictures=TRACE_PICTURES
            )
            for cap in CAPACITIES:
                total, _ = simulate(
                    trace,
                    CacheConfig(line_size=64, capacity=cap, associativity=0),
                )
                out[(procs, cap)] = total
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["cache size", "1p capacity/cold", "8p capacity/cold",
         "8p coherence share %"],
        title=f"Figure 15: read capacity vs cold misses, fully-assoc, {res}",
    )
    for cap in CAPACITIES:
        one, eight = stats[(1, cap)], stats[(8, cap)]
        table.add_row(
            f"{cap >> 10}KB",
            round(one.capacity_to_cold_ratio, 2),
            round(eight.capacity_to_cold_ratio, 2),
            round(eight.coherence_misses / max(eight.misses, 1) * 100, 1),
        )
    record(table.render())

    for procs in (1, 8):
        ratios = [stats[(procs, cap)].capacity_to_cold_ratio for cap in CAPACITIES]
        # At the paper's 1MB operating point, cold misses dominate:
        # capacity misses are the small remainder (Fig. 15).
        assert ratios[-1] < 1.0, f"{procs}p: capacity still dominates at 1MB"
        assert ratios[0] > ratios[-1]
    # Sharing misses stay a small fraction even at 8 processors.
    big = stats[(8, 256 << 10)]
    assert big.coherence_misses < 0.2 * big.misses
