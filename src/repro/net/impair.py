"""Deterministic in-process link impairment (no root, no ``netem``).

CI cannot shape real network interfaces, so impairment happens at the
transport write boundary instead: every outgoing wire frame passes
through an :class:`ImpairedSender` which may drop it, swap it with its
neighbour, delay it, or pace it through a bandwidth cap before it
reaches the socket.

The *decisions* live in :class:`ImpairmentSchedule`, a pure function
of ``(seed, droppable-message index)`` — no hidden RNG state, so the
same profile + seed produces the same loss pattern regardless of
timing, and property tests can enumerate verdicts without doing any
I/O.  Only droppable messages (``SLICE``) consume schedule indices;
control messages model the reliable channel and are merely paced and
delayed, never dropped or reordered past their predecessors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ImpairmentProfile:
    """Link shape: loss / reorder probabilities, jitter, bandwidth."""

    loss: float = 0.0           # P(drop) per droppable message
    reorder: float = 0.0        # P(swap with the next droppable)
    jitter_ms: float = 0.0      # uniform [0, jitter_ms) extra delay
    bandwidth_bps: float | None = None  # serialisation-rate cap
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {self.loss}")
        if not 0.0 <= self.reorder <= 1.0:
            raise ValueError(
                f"reorder must be in [0, 1], got {self.reorder}"
            )
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError(
                f"bandwidth_bps must be > 0, got {self.bandwidth_bps}"
            )


@dataclass(frozen=True)
class Verdict:
    """Fate of one droppable message."""

    drop: bool = False
    swap: bool = False       # hold; send after the next droppable
    delay_s: float = 0.0


class ImpairmentSchedule:
    """Pure seeded verdicts: ``index -> Verdict``, order-independent."""

    def __init__(self, profile: ImpairmentProfile) -> None:
        self.profile = profile

    def verdict(self, index: int) -> Verdict:
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        p = self.profile
        rng = random.Random(f"{p.seed}:{index}")
        drop = rng.random() < p.loss
        swap = (not drop) and rng.random() < p.reorder
        delay = rng.random() * p.jitter_ms / 1e3 if p.jitter_ms else 0.0
        return Verdict(drop=drop, swap=swap, delay_s=delay)

    def drops(self, count: int) -> list[int]:
        """Indices dropped among the first ``count`` messages."""
        return [i for i in range(count) if self.verdict(i).drop]


@dataclass
class ImpairStats:
    """What the shim actually did to one connection's output."""

    sent: int = 0            # frames that reached the socket
    dropped: int = 0
    swapped: int = 0
    delayed: int = 0
    wire_bytes: int = 0
    delay_s_total: float = 0.0
    dropped_seqs: list[int] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "sent": self.sent,
            "dropped": self.dropped,
            "swapped": self.swapped,
            "delayed": self.delayed,
            "wire_bytes": self.wire_bytes,
            "delay_s_total": self.delay_s_total,
        }


class ImpairedSender:
    """Asyncio write path with the impairment shim in the middle.

    ``await send(frame_bytes, droppable, seq)`` either forwards the
    frame to the writer (possibly after a pacing/jitter sleep, possibly
    swapped with the next droppable frame) or drops it and records the
    sequence number.  Control frames flush any held droppable first, so
    a ``PIC_DONE`` can never overtake its own picture's slices.

    With ``schedule=None`` the sender is a transparent pass-through —
    the unimpaired path uses the same code.
    """

    def __init__(self, writer, schedule: ImpairmentSchedule | None = None):
        self._writer = writer
        self._schedule = schedule
        self._index = 0          # droppable messages seen
        self._held: bytes | None = None
        self._next_free = 0.0    # bandwidth-bucket horizon (loop time)
        self.stats = ImpairStats()

    async def _pace(self, nbytes: int, extra_delay_s: float) -> None:
        import asyncio

        bps = self._schedule.profile.bandwidth_bps if self._schedule else None
        delay = extra_delay_s
        if bps is not None:
            now = asyncio.get_running_loop().time()
            start = max(now, self._next_free)
            self._next_free = start + nbytes * 8 / bps
            delay += max(0.0, start - now)
        if delay > 0:
            self.stats.delayed += 1
            self.stats.delay_s_total += delay
            await asyncio.sleep(delay)

    async def _write(self, frame: bytes, extra_delay_s: float = 0.0) -> None:
        await self._pace(len(frame), extra_delay_s)
        self._writer.write(frame)
        await self._writer.drain()
        self.stats.sent += 1
        self.stats.wire_bytes += len(frame)

    async def flush(self) -> None:
        """Emit a held (swap-pending) frame; call before close/control."""
        if self._held is not None:
            held, self._held = self._held, None
            await self._write(held)

    async def send(self, frame: bytes, droppable: bool, seq: int) -> bool:
        """Send one encoded frame; returns False if the shim ate it."""
        if not droppable or self._schedule is None:
            await self.flush()
            await self._write(frame)
            return True
        verdict = self._schedule.verdict(self._index)
        self._index += 1
        if verdict.drop:
            self.stats.dropped += 1
            self.stats.dropped_seqs.append(seq)
            await self.flush()
            return False
        if self._held is not None:
            # A frame is waiting to be overtaken: send current first.
            self.stats.swapped += 1
            await self._write(frame, verdict.delay_s)
            await self.flush()
            return True
        if verdict.swap:
            self._held = frame
            return True
        await self._write(frame, verdict.delay_s)
        return True
