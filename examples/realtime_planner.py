#!/usr/bin/env python3
"""Real-time planner: how many processors does 30 pictures/sec take?

The paper's motivating question — can commodity shared-memory
multiprocessors decode MPEG-2 in real time, and at what sizes?  This
example sweeps worker counts for each resolution and machine type and
reports the smallest configuration that sustains the 30 pics/s display
rate, using the GOP-level and improved slice-level decoders.

Run:  python examples/realtime_planner.py
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.parallel import (
    GopLevelDecoder,
    ParallelConfig,
    SliceLevelDecoder,
    SliceMode,
    profile_stream,
)
from repro.parallel.profile import tile_profile
from repro.smp import challenge, dash
from repro.video.synthetic import SyntheticVideo

TARGET_FPS = 30.0
MAX_WORKERS = 14


def build_profile(width: int, height: int, pictures: int = 156):
    video = SyntheticVideo(width=width, height=height, seed=11)
    stream = encode_sequence(
        video.frames(13), EncoderConfig(gop_size=13, qscale_code=3)
    )
    base, _ = profile_stream(stream)
    return tile_profile(base, max(pictures // 13, 1))


def workers_needed(profile, runner) -> tuple[int | None, float]:
    """Smallest worker count reaching TARGET_FPS, and the best rate."""
    best = 0.0
    for workers in range(1, MAX_WORKERS + 1):
        rate = runner(profile, workers)
        best = max(best, rate)
        if rate >= TARGET_FPS:
            return workers, rate
    return None, best


def main() -> None:
    machine = challenge(16)

    def run_gop(profile, workers):
        return (
            GopLevelDecoder(profile)
            .run(ParallelConfig(workers=workers, machine=machine))
            .pictures_per_second
        )

    def run_slice(profile, workers):
        return (
            SliceLevelDecoder(profile)
            .run(
                ParallelConfig(workers=workers, machine=machine),
                SliceMode.IMPROVED,
            )
            .pictures_per_second
        )

    table = TextTable(
        ["resolution", "GOP workers", "@ rate", "slice workers", "@ rate"],
        title=f"Workers needed for {TARGET_FPS:.0f} pics/s on a 16-proc Challenge",
    )
    for width, height in ((88, 64), (176, 120), (352, 240)):
        profile = build_profile(width, height)
        gw, gr = workers_needed(profile, run_gop)
        sw, sr = workers_needed(profile, run_slice)
        table.add_row(
            f"{width}x{height}",
            gw if gw else f">{MAX_WORKERS}",
            round(gr, 1),
            sw if sw else f">{MAX_WORKERS}",
            round(sr, 1),
        )
    print(table.render())
    print()
    print(
        "The paper's conclusion at full scale: real-time for 352x240 and\n"
        "704x480 on small SMPs; 1408x960 needs next-generation processors.\n"
        "(This example runs scaled-down clips so it finishes in seconds —\n"
        "the benchmarks regenerate the full-size Tables 3-4.)"
    )

    # NUMA variant: the same question on a DASH-like machine.
    profile = build_profile(176, 120)
    numa = TextTable(
        ["machine", "workers for 30 fps", "best rate"],
        title="Same stream, UMA vs NUMA (no data placement)",
    )
    for label, m in (("Challenge (UMA)", challenge(16)), ("DASH (NUMA)", dash(16))):
        def run(profile, workers, m=m):
            return (
                GopLevelDecoder(profile)
                .run(ParallelConfig(workers=workers, machine=m))
                .pictures_per_second
            )

        w, r = workers_needed(profile, run)
        numa.add_row(label, w if w else f">{MAX_WORKERS}", round(r, 1))
    print()
    print(numa.render())


if __name__ == "__main__":
    main()
