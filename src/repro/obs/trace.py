"""Span/event tracer emitting Chrome trace-event JSON.

The paper's per-process execution timelines (Figs. 5-7) were drawn
from source instrumentation of the parallel decoder; this module is
that instrumentation for the reproduction, on real silicon.  Decode
code brackets interesting intervals with :func:`trace_span`; when
tracing is enabled the completed spans accumulate in a ring buffer of
plain dicts and are exported as `Chrome trace-event JSON
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
— load the file in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` to see the scan/worker/display timeline.

Disabled-path cost
------------------
Tracing is **off by default** and the disabled path allocates nothing:
:func:`trace_span` returns the shared :data:`NULL_SPAN` singleton (a
no-op context manager), so a hot loop pays one global load, one
``is None`` test and an empty ``with`` block.  The overhead-guard test
(``tests/obs/test_overhead.py``) pins this: with tracing disabled the
decoder constructs zero span objects, and decoded frames plus work
counters are bit-identical with tracing on and off.

Clock
-----
Timestamps come from :func:`time.monotonic_ns` — on Linux this is
``CLOCK_MONOTONIC``, which is system-wide, so spans recorded by forked
or spawned worker processes land on the same timeline as the parent's
without any clock handshake.  Worker processes write *shards* (JSONL
of raw events, :meth:`Tracer.write_shard`); the parent reads them back
(:meth:`Tracer.read_shard`) and merges everything into one trace
(:func:`to_chrome`), which normalises timestamps to microseconds from
the earliest event.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Iterable

#: The monotonic, cross-process-comparable clock (ns).
_CLOCK = time.monotonic_ns

#: Default ring-buffer capacity (events kept; oldest dropped beyond).
DEFAULT_CAPACITY = 1_000_000

#: Keys every exported Chrome trace event must carry (schema-tested).
REQUIRED_EVENT_KEYS = ("ph", "ts", "pid", "tid", "name")


class _NullSpan:
    """The do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Shared singleton: the disabled path never allocates.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records one complete ("X") event on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(
        self, tracer: "Tracer", name: str, cat: str, args: dict | None
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._t0 = _CLOCK()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = _CLOCK()
        self._tracer.complete(
            self.name, self.cat, self._t0, t1 - self._t0, self.args
        )
        return False


class Tracer:
    """Ring-buffered event collector for one process.

    Internal events are dicts in Chrome trace-event shape with ``ts``
    and ``dur`` in **nanoseconds** (converted to microseconds at
    export).  The buffer is a ``deque(maxlen=capacity)`` so a long run
    degrades by forgetting its oldest spans, never by growing without
    bound; ``dropped`` counts the casualties.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        process_name: str | None = None,
    ) -> None:
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.pid = os.getpid()
        self.dropped = 0
        self.process_name = process_name
        if process_name is not None:
            # Chrome metadata event: names this pid's track in the UI.
            self.events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "ts": 0,
                    "pid": self.pid,
                    "tid": self._tid(),
                    "args": {"name": process_name},
                }
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _tid() -> int:
        return threading.get_native_id()

    def _append(self, event: dict) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "decode", args: dict | None = None) -> _Span:
        """A context manager recording one complete event."""
        return _Span(self, name, cat, args)

    def complete(
        self,
        name: str,
        cat: str,
        start_ns: int,
        dur_ns: int,
        args: dict | None = None,
    ) -> None:
        """Record a complete ("X") event with explicit start/duration.

        Used directly (rather than via :meth:`span`) when the interval
        is only known after the fact — e.g. a worker attributing the
        idle gap since its previous task.
        """
        event = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": start_ns,
            "dur": max(dur_ns, 0),
            "pid": self.pid,
            "tid": self._tid(),
        }
        if args:
            event["args"] = args
        self._append(event)

    def instant(self, name: str, cat: str = "decode", args: dict | None = None) -> None:
        """Record an instant ("i") event at the current time."""
        event = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "ts": _CLOCK(),
            "pid": self.pid,
            "tid": self._tid(),
            "s": "t",
        }
        if args:
            event["args"] = args
        self._append(event)

    def counter(self, name: str, value: float, cat: str = "metric") -> None:
        """Record a counter ("C") sample — a stepped series in the UI."""
        self._append(
            {
                "ph": "C",
                "name": name,
                "cat": cat,
                "ts": _CLOCK(),
                "pid": self.pid,
                "tid": self._tid(),
                "args": {"value": value},
            }
        )

    # ------------------------------------------------------------------
    # shards: worker processes persist raw events for the parent
    # ------------------------------------------------------------------
    def write_shard(self, path: str) -> int:
        """Append buffered events to ``path`` as JSONL and clear them.

        Worker processes call this after each task so a crashed worker
        loses at most one task's spans.  Returns the number written.
        """
        n = len(self.events)
        if n == 0:
            return 0
        with open(path, "a") as fh:
            for event in self.events:
                fh.write(json.dumps(event) + "\n")
        self.events.clear()
        return n

    @staticmethod
    def read_shard(path: str) -> list[dict]:
        """Load raw events written by :meth:`write_shard`."""
        events = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events

    def extend(self, events: Iterable[dict]) -> None:
        """Merge foreign raw events (worker shards) into this buffer."""
        for event in events:
            self._append(event)

    # ------------------------------------------------------------------
    def write_chrome(self, path: str) -> dict:
        """Export this tracer's events as a Chrome trace JSON file."""
        doc = to_chrome(self.events)
        with open(path, "w") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        return doc


# ----------------------------------------------------------------------
# export & validation
# ----------------------------------------------------------------------
def to_chrome(events: Iterable[dict]) -> dict:
    """Convert raw (ns) events into a Chrome trace-event JSON document.

    Events are sorted by timestamp and timestamps are rebased to
    microseconds from the earliest non-metadata event, so traces open
    at t=0 in Perfetto regardless of machine uptime.  Metadata ("M")
    events keep ts 0 and sort first.

    The rebase origin is preserved as a top-level ``baseTimeNs`` key
    (ignored by Chrome/Perfetto): ``baseTimeNs + ts * 1000`` restores
    each event's absolute monotonic nanosecond timestamp, which is
    what lets independently exported shards from different processes
    be merged onto one timeline (``repro.obs.propagate``).
    """
    raw = sorted(events, key=lambda e: (e.get("ph") != "M", e.get("ts", 0)))
    base = min(
        (e["ts"] for e in raw if e.get("ph") != "M"),
        default=0,
    )
    out = []
    for e in raw:
        c = dict(e)
        if c.get("ph") != "M":
            c["ts"] = (c["ts"] - base) / 1000.0
            if "dur" in c:
                c["dur"] = c["dur"] / 1000.0
        out.append(c)
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "baseTimeNs": int(base),
    }


def validate_chrome_trace(doc: dict) -> list[dict]:
    """Validate a Chrome trace document; returns its events.

    Checks the shape CI and the schema tests rely on: a
    ``traceEvents`` list in which every event has the
    :data:`REQUIRED_EVENT_KEYS`, complete events carry a non-negative
    ``dur``, and non-metadata timestamps are non-negative.  Raises
    ``ValueError`` with the first offending event on failure.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace document must be a dict with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for e in events:
        for key in REQUIRED_EVENT_KEYS:
            if key not in e:
                raise ValueError(f"trace event missing {key!r}: {e!r}")
        if e["ph"] == "X" and e.get("dur", 0) < 0:
            raise ValueError(f"complete event with negative dur: {e!r}")
        if e["ph"] != "M" and e["ts"] < 0:
            raise ValueError(f"event with negative ts: {e!r}")
    return events


# ----------------------------------------------------------------------
# module-level switchboard (the always-compiled-in, near-zero-cost API)
# ----------------------------------------------------------------------
_tracer: Tracer | None = None


def enable_tracing(
    capacity: int = DEFAULT_CAPACITY, process_name: str | None = None
) -> Tracer:
    """Install and return the process-global tracer."""
    global _tracer
    _tracer = Tracer(capacity=capacity, process_name=process_name)
    return _tracer


def disable_tracing() -> None:
    """Remove the global tracer; :func:`trace_span` reverts to no-ops."""
    global _tracer
    _tracer = None


def tracing_enabled() -> bool:
    return _tracer is not None


def get_tracer() -> Tracer | None:
    return _tracer


def trace_span(name: str, cat: str = "decode", **args: Any):
    """Bracket an interval: ``with trace_span("decode.picture"): ...``.

    Returns the shared :data:`NULL_SPAN` when tracing is disabled —
    no allocation, no clock read.
    """
    t = _tracer
    if t is None:
        return NULL_SPAN
    return t.span(name, cat, args or None)


def trace_instant(name: str, cat: str = "decode", **args: Any) -> None:
    t = _tracer
    if t is not None:
        t.instant(name, cat, args or None)


def trace_counter(name: str, value: float, cat: str = "metric") -> None:
    t = _tracer
    if t is not None:
        t.counter(name, value, cat)


def trace_complete(
    name: str, cat: str, start_ns: int, dur_ns: int, **args: Any
) -> None:
    """Record an after-the-fact interval (no-op when disabled)."""
    t = _tracer
    if t is not None:
        t.complete(name, cat, start_ns, dur_ns, args or None)
