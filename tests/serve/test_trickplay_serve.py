"""Serve-layer random access: mid-stream join and the ABR rung switch.

Two service-level behaviours ride on the closed-GOP entry guarantee:

* **Mid-stream join** — ``submit(..., start_gop=g)`` admits the
  session at the next closed GOP and decodes the tail *substream*.
  Every emitted picture must be bit-identical to the same picture of
  a full linear decode; the join is exact, not approximate.
* **Rung switch** — under sustained overload the degradation ladder's
  cheapest-first action hands the not-yet-started tail of the stream
  to a continuation session decoding a lower-resolution rung (an
  internal mid-stream join).  The switch must fire *before* drop-B,
  account for every picture (emitted + dropped + switched), and
  complete both sessions.

The injected slow clock makes overload deterministic, exactly like
the existing degradation tests.
"""

from __future__ import annotations

import pytest

from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.serve import DecodeService, DegradePolicy, SessionStatus
from repro.serve.degrade import ACTION_DROP_B, ACTION_SWITCH_RUNG, DegradeState
from repro.serve.rungs import build_rung_ladder, downscale_frame
from repro.video.synthetic import SyntheticVideo
from tests.mpeg2.test_batched_parity import assert_frames_identical

#: Multi-GOP corpus vectors — single-GOP streams have no interior
#: join point to exercise.
JOIN_VECTORS = ("two_gop_48x32", "rc_64x48_gop4", "altscan_48x32_gop7")


def _slow_clock(step=1.0):
    t = [0.0]

    def clock():
        t[0] += step
        return t[0]

    return clock


@pytest.fixture(scope="module")
def abr_stream():
    """39 pictures in 3 closed 13-picture GOPs (rung-switch fodder)."""
    video = SyntheticVideo(width=48, height=32, seed=23).frames(39)
    return encode_sequence(video, EncoderConfig(gop_size=13, qscale_code=3))


class TestMidStreamJoin:
    @pytest.mark.parametrize("name", JOIN_VECTORS)
    def test_join_tail_bit_identical(self, golden, name):
        index = golden.index(name)
        for start_gop in range(1, len(index.gops)):
            base = index.gop_display_base(start_gop)
            ref_frames, _ = golden.scalar(name)
            got = {}
            svc = DecodeService(workers=0, capacity=1)
            sess = svc.submit(
                "j", golden.data(name), start_gop=start_gop,
                on_frame=lambda di, f: got.__setitem__(di, f),
            )
            svc.run()
            assert sess.status is SessionStatus.DONE
            assert sess.join_gop == start_gop
            assert sess.join_display_base == base
            assert sorted(got) == list(range(len(ref_frames) - base))
            assert_frames_identical(
                ref_frames[base:], [got[i] for i in sorted(got)]
            )

    def test_join_report_carries_source_coordinates(self, golden):
        svc = DecodeService(workers=0, capacity=1)
        sess = svc.submit("j", golden.data("two_gop_48x32"), start_gop=1)
        svc.run()
        doc = sess.report()
        assert doc["join_gop"] == 1
        assert doc["join_display_base"] == 4

    def test_join_past_eof_contained(self, golden):
        # A bad join point is a scan failure: the session fails alone,
        # the service survives.
        svc = DecodeService(workers=0, capacity=1)
        sess = svc.submit("j", golden.data("two_gop_48x32"), start_gop=99)
        svc.run()
        assert sess.status is SessionStatus.FAILED
        assert sess.error["type"] == "StreamIndexError"

    def test_join_with_real_workers(self, golden, no_shm_leak, watchdog):
        name = "rc_64x48_gop4"
        index = golden.index(name)
        base = index.gop_display_base(1)
        ref_frames, _ = golden.scalar(name)
        got = {}
        svc = DecodeService(workers=2, capacity=1)
        sess = svc.submit(
            "j", golden.data(name), start_gop=1,
            on_frame=lambda di, f: got.__setitem__(di, f),
        )
        svc.run()
        assert sess.status is SessionStatus.DONE
        assert_frames_identical(
            ref_frames[base:], [got[i] for i in sorted(got)]
        )


class TestRungLadder:
    def test_ladder_preserves_gop_partition(self, abr_stream):
        from repro.mpeg2.index import build_index

        rungs = build_rung_ladder(abr_stream, levels=1)
        assert len(rungs) == 1
        rung = rungs[0]
        src = build_index(abr_stream)
        dst = build_index(rung.data)
        assert rung.width * 2 == src.sequence_header.width
        assert rung.height * 2 == src.sequence_header.height
        # GOP partitions must match rung-for-rung or the switch's
        # "hand over the tail from GOP g" arithmetic breaks.
        assert [len(g.pictures) for g in dst.gops] == [
            len(g.pictures) for g in src.gops
        ]
        assert rung.profile.pictures == src.picture_count

    def test_downscale_frame_box_filter(self, golden):
        frames, _ = golden.scalar("two_gop_48x32")
        small = downscale_frame(frames[0])
        assert small.display_width == frames[0].display_width // 2
        assert small.display_height == frames[0].display_height // 2

    def test_policy_validates_ordering(self):
        with pytest.raises(ValueError):
            DegradePolicy(drop_b_after=2, switch_rung_after=5)
        with pytest.raises(ValueError):
            DegradePolicy(switch_rung_after=0)

    def test_state_fires_switch_before_drop_b(self):
        state = DegradeState(
            DegradePolicy(drop_b_after=3, switch_rung_after=2)
        )
        actions = [state.on_emit(late=True) for _ in range(8)]
        fired = [a for a in actions if a]
        assert fired[0] == ACTION_SWITCH_RUNG
        assert ACTION_DROP_B in fired
        assert fired.index(ACTION_SWITCH_RUNG) < fired.index(ACTION_DROP_B)
        # The switch is once-per-session: never fired twice.
        assert fired.count(ACTION_SWITCH_RUNG) == 1
        snap = state.snapshot()
        assert snap["switch_rung_actions"] == 1
        assert snap["actions"][0] == ACTION_SWITCH_RUNG


class TestRungSwitchEndToEnd:
    def test_switch_fires_before_drop_b_and_accounts_pictures(
        self, abr_stream, no_shm_leak
    ):
        rungs = [r.data for r in build_rung_ladder(abr_stream, levels=1)]
        policy = DegradePolicy(
            drop_b_after=3, skip_gop_after=6, recover_after=8,
            switch_rung_after=2,
        )
        svc = DecodeService(
            workers=0, capacity=2, fps=30.0, policy=policy,
            clock=_slow_clock(),
        )
        sess = svc.submit("abr", abr_stream, rungs=rungs)
        svc.run()
        cont = svc.sessions.get(sess.continuation)
        assert sess.status is SessionStatus.DONE
        assert cont is not None and cont.status is SessionStatus.DONE
        # Ordering: the rung switch is the *first* degrade action —
        # cheaper than shedding pictures, so it must precede drop-B.
        actions = sess.degrade.snapshot()["actions"]
        assert actions[0] == ACTION_SWITCH_RUNG
        # Conservation: every source picture is emitted here, shed
        # here, or handed to the continuation — and the continuation
        # decodes exactly the handed-over tail.
        assert (
            sess.emitted_pictures
            + sess.dropped_pictures
            + sess.switched_pictures
            == sess.picture_count
        )
        assert cont.picture_count == sess.switched_pictures
        assert cont.rung_level == 1
        assert cont.join_gop >= 1
        doc = sess.report()
        assert doc["continuation"] == cont.name
        assert doc["switched_pictures"] == sess.switched_pictures

    def test_no_switch_without_rungs(self, abr_stream):
        # Same overload, no ladder: the policy level is configured but
        # the session has nothing to switch to — drop-B fires instead
        # and the run still completes.
        policy = DegradePolicy(
            drop_b_after=3, skip_gop_after=6, recover_after=8,
            switch_rung_after=2,
        )
        svc = DecodeService(
            workers=0, capacity=1, fps=30.0, policy=policy,
            clock=_slow_clock(),
        )
        sess = svc.submit("abr", abr_stream)
        svc.run()
        assert sess.status is SessionStatus.DONE
        assert sess.continuation is None
        assert sess.switched_pictures == 0
        assert sess.emitted_pictures + sess.dropped_pictures == (
            sess.picture_count
        )
