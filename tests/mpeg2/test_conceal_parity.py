"""Concealment parity: dropped slices conceal bit-identically everywhere.

The ``conceal_*`` golden vectors (``tests/vectors/generate_vectors.py``)
drop whole slices off the wire — the packet-loss malformation the
streaming edge must survive.  The resilient decode's output is pinned:
temporal concealment (co-located rows of the forward reference) where a
reference exists, spatial row-copy where none does.  Every decode path
— scalar oracle, batched fast path, slice-parallel in both barrier
modes, real worker processes — must produce the pinned digests *and*
the pinned ``concealed_slices`` count, or lost-slice behaviour has
silently forked between the local decoders and the network client's
concealment (which reuses the same :mod:`repro.mpeg2.reconstruct`
primitives).
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.frame import Frame
from repro.mpeg2.reconstruct import (
    conceal_row_spatial,
    conceal_row_temporal,
    conceal_rows,
    missing_rows,
)
from repro.obs.stalls import (
    REASON_CONCEAL_SPATIAL,
    REASON_CONCEAL_TEMPORAL,
)
from repro.parallel.mp import MPGopDecoder
from repro.parallel.mp_slice import MPSliceDecoder

VECTOR_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "vectors")

with open(os.path.join(VECTOR_DIR, "digests.json")) as _fh:
    CONCEAL: dict[str, dict] = json.load(_fh)["conceal"]

CONCEAL_NAMES = sorted(CONCEAL)

#: name -> resilient decode callable returning (frames, counters).
PATHS = {
    "scalar": lambda d, c: SequenceDecoder(
        d, engine="scalar", resilient=True
    ).decode_all(c),
    "batched": lambda d, c: SequenceDecoder(
        d, engine="batched", resilient=True
    ).decode_all(c),
    "mp-gop-0": lambda d, c: MPGopDecoder(
        d, workers=0, resilient=True
    ).decode_all(c),
    "mp-slice-0-simple": lambda d, c: MPSliceDecoder(
        d, workers=0, mode="simple", resilient=True
    ).decode_all(c),
    "mp-slice-0-improved": lambda d, c: MPSliceDecoder(
        d, workers=0, mode="improved", resilient=True
    ).decode_all(c),
}

#: Real worker processes are exercised on one vector per policy flavour
#: (temporal + the zero-slice picture); the in-process paths cover the
#: full conceal corpus cheaply.
MP_WORKER_VECTORS = ("conceal_p_temporal", "conceal_lost_picture")


def load_vector(name: str) -> bytes:
    with open(os.path.join(VECTOR_DIR, CONCEAL[name]["file"]), "rb") as fh:
        return fh.read()


class TestConcealCorpusIntegrity:
    @pytest.mark.parametrize("name", CONCEAL_NAMES)
    def test_stream_bytes_match_committed_hash(self, name):
        data = load_vector(name)
        assert len(data) == CONCEAL[name]["stream_bytes"]
        assert (
            hashlib.sha256(data).hexdigest() == CONCEAL[name]["stream_sha256"]
        )

    def test_corpus_covers_both_policies(self):
        notes = " ".join(e["note"] for e in CONCEAL.values())
        assert "temporal" in notes and "spatial" in notes
        assert len(CONCEAL_NAMES) >= 3


class TestConcealParity:
    @pytest.mark.parametrize("path", sorted(PATHS))
    @pytest.mark.parametrize("name", CONCEAL_NAMES)
    def test_path_reproduces_pinned_concealment(self, name, path):
        entry = CONCEAL[name]
        counters = WorkCounters()
        frames = PATHS[path](load_vector(name), counters)
        assert [f.digest() for f in frames] == entry["frame_digests"], (
            f"{path} concealment of {name} drifted from the pinned digests"
        )
        assert counters.concealed_slices == entry["concealed_slices"]

    @pytest.mark.parametrize("name", MP_WORKER_VECTORS)
    def test_real_worker_pool_conceals_identically(self, name):
        entry = CONCEAL[name]
        counters = WorkCounters()
        frames = MPSliceDecoder(
            load_vector(name), workers=2, mode="improved", resilient=True
        ).decode_all(counters)
        assert [f.digest() for f in frames] == entry["frame_digests"]
        assert counters.concealed_slices == entry["concealed_slices"]

    def test_strict_decode_rejects_nothing_is_hidden(self):
        # A dropped slice leaves the stream structurally valid, so the
        # strict decoders *decode* it — but to different pixels.  The
        # conceal digests must never equal the base vector's (the
        # corpus would be toothless).
        with open(os.path.join(VECTOR_DIR, "digests.json")) as fh:
            streams = json.load(fh)["streams"]
        for name in CONCEAL_NAMES:
            base = CONCEAL[name]["base"]
            assert (
                CONCEAL[name]["frame_digests"]
                != streams[base]["frame_digests"]
            ), name


class TestConcealStallReasons:
    def test_temporal_concealment_recorded_in_stalls(self):
        dec = MPSliceDecoder(
            load_vector("conceal_p_temporal"),
            workers=0,
            mode="improved",
            resilient=True,
        )
        dec.decode_all()
        reasons = dec.last_stalls.by_reason()
        assert REASON_CONCEAL_TEMPORAL in reasons
        assert REASON_CONCEAL_SPATIAL not in reasons

    def test_spatial_concealment_recorded_in_stalls(self):
        dec = MPSliceDecoder(
            load_vector("conceal_i_spatial"),
            workers=0,
            mode="improved",
            resilient=True,
        )
        dec.decode_all()
        reasons = dec.last_stalls.by_reason()
        assert REASON_CONCEAL_SPATIAL in reasons


class TestConcealPrimitives:
    """Unit pins for the row-level helpers the client reuses."""

    def _frame(self, fill: int = 0) -> Frame:
        f = Frame.blank(48, 32)
        f.y[:] = fill
        f.cb[:] = fill
        f.cr[:] = fill
        return f

    def test_temporal_copies_colocated_rows(self):
        out, ref = self._frame(0), self._frame(0)
        ref.y[16:32, :] = 77
        ref.cb[8:16, :] = 78
        ref.cr[8:16, :] = 79
        conceal_row_temporal(out, ref, 1)
        assert np.all(out.y[16:32] == 77)
        assert np.all(out.cb[8:16] == 78)
        assert np.all(out.cr[8:16] == 79)
        assert np.all(out.y[0:16] == 0)

    def test_spatial_row0_falls_back_to_grey(self):
        out = self._frame(5)
        conceal_row_spatial(out, 0)
        assert np.all(out.y[0:16] == 128)
        assert np.all(out.cb[0:8] == 128)
        assert np.all(out.y[16:32] == 5)

    def test_spatial_cascade_is_top_down(self):
        # Rows 1 then 2 concealed ascending: both end up as copies of
        # row 0 (row 2 copies the *already concealed* row 1).
        out = Frame.blank(48, 48)
        out.y[0:16, :] = 9
        out.y[16:32, :] = 50
        out.y[32:48, :] = 60
        n_t, n_s = conceal_rows(out, None, [2, 1])
        assert (n_t, n_s) == (0, 2)
        assert np.all(out.y[16:32] == 9)
        assert np.all(out.y[32:48] == 9)

    def test_conceal_rows_counts_policies_and_counters(self):
        out, ref = self._frame(0), self._frame(1)
        counters = WorkCounters()
        n_t, n_s = conceal_rows(out, ref, [0, 1], counters)
        assert (n_t, n_s) == (2, 0)
        assert counters.concealed_slices == 2

    def test_missing_rows_complement(self):
        assert missing_rows(4, [0, 2]) == [1, 3]
        assert missing_rows(3, []) == [0, 1, 2]
        assert missing_rows(2, [0, 1]) == []
        # Out-of-range covered rows (corrupt vertical_position) are
        # ignored harmlessly.
        assert missing_rows(2, [0, 1, 7]) == []
