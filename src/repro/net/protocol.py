"""Wire protocol for the streaming front end.

Every message is one length-prefixed frame::

    !I  frame length (bytes after this field)
    !B  message type
    !I  sequence number (per-connection, monotone from 0)
    !H  JSON header length
    --  JSON header (UTF-8)
    --  binary payload (remainder)

Design points:

* **Slices are the loss unit.**  A decoded picture travels as one
  ``SLICE`` message per macroblock-row band (the paper's slice == one
  MB row), so dropping a message on an impaired link loses exactly one
  slice — the malformation the resilient decode path and the client's
  concealment already handle.  ``SLICE`` is the only *droppable* type;
  control messages model the reliable channel.
* **PIC_DONE is the commit point.**  It always follows a picture's
  slices and carries how many bands were sent, so the client knows
  which rows never arrived and conceals them — every picture is
  *delivered or concealed*, never silently missing.
* **Trick-play rides the reliable channel.**  ``SEEK`` (a mid-stream
  join at the closed GOP owning a requested picture) and ``RATE``
  (fast-forward: reference pictures only, every (N/2)-th GOP) are
  control messages — never droppable.  ``HELLO`` announces ``controls:
  N`` and the server reads exactly N ``SEEK``/``RATE`` frames before
  admission, so the request is deterministic, not a race with slice
  traffic.  ``ACCEPT``'s ``pictures`` counts the trick-play
  sub-sequence, which keeps delivered-or-concealed accounting and the
  lateness CDF working unchanged during rate changes.
* **Sequence numbers are assigned before impairment**, so the receiver
  can observe gaps (losses) and inversions (reorder) explicitly; the
  property suite checks conservation: every seq is delivered exactly
  once or accounted as dropped.
* **Telemetry rides the existing headers** (PR-8).  ``HELLO`` carries
  a client-minted trace id plus ``t_ns`` (client monotonic send time);
  ``ACCEPT`` echoes the trace id and returns ``clock: {recv_ns,
  send_ns}`` — the NTP-style two-timestamp handshake
  (:mod:`repro.obs.propagate`) that lets client and server trace
  shards merge onto one clock.  ``SLICE``/``PIC_DONE`` carry ``ts``
  (server monotonic send ns), and ``STATS`` flows both ways: client →
  server per-picture receipts as before, and server → client periodic
  pushes (``src: "server"``) holding the live SLO snapshot and a small
  metrics digest.  All additions are plain JSON header fields — the
  frame grammar is unchanged, and old peers ignore keys they don't
  know.

The framer is a plain byte machine (feed bytes, get messages) usable
without sockets — the Hypothesis suite drives it directly.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

_LEN = struct.Struct("!I")
_HDR = struct.Struct("!BIH")

#: Hard cap on one frame; a parsed length beyond this means a corrupt
#: or adversarial peer and the connection is torn down.
MAX_FRAME_BYTES = 16 << 20

# message types ------------------------------------------------------
MSG_HELLO = 1      # client -> server: {stream, fps?, resilient?, trace, t_ns}
MSG_ACCEPT = 2     # server -> client: geometry + verdict + {trace, clock}
MSG_REJECT = 3     # server -> client: {reason}
MSG_SLICE = 4      # server -> client: one MB-row band (droppable; ts)
MSG_PIC_DONE = 5   # server -> client: picture commit (reliable; ts)
MSG_BYE = 6        # server -> client: end of session summary
MSG_STATS = 7      # bidirectional: client receipts / server SLO pushes
MSG_SEEK = 8       # client -> server: {picture} join/seek request (reliable)
MSG_RATE = 9       # client -> server: {rate} trick-play request (reliable)

_TYPE_NAMES = {
    MSG_HELLO: "hello",
    MSG_ACCEPT: "accept",
    MSG_REJECT: "reject",
    MSG_SLICE: "slice",
    MSG_PIC_DONE: "pic_done",
    MSG_BYE: "bye",
    MSG_STATS: "stats",
    MSG_SEEK: "seek",
    MSG_RATE: "rate",
}

#: Types the impairment shim may drop.  Everything else models the
#: reliable control channel (retransmitted transport in a real stack).
DROPPABLE_TYPES = frozenset({MSG_SLICE})


class ProtocolError(ValueError):
    """Framing violation: bad length, unknown type, corrupt header."""


@dataclass(frozen=True)
class Message:
    """One decoded wire message."""

    type: int
    seq: int
    header: dict
    payload: bytes = b""

    @property
    def type_name(self) -> str:
        return _TYPE_NAMES.get(self.type, f"type{self.type}")

    @property
    def droppable(self) -> bool:
        return self.type in DROPPABLE_TYPES


def encode_message(
    type_: int, seq: int, header: dict, payload: bytes = b""
) -> bytes:
    """Encode one message into its wire frame."""
    if type_ not in _TYPE_NAMES:
        raise ProtocolError(f"unknown message type {type_}")
    if seq < 0:
        raise ProtocolError(f"negative sequence number {seq}")
    hdr = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(hdr) > 0xFFFF:
        raise ProtocolError(f"header too large ({len(hdr)} bytes)")
    body = _HDR.pack(type_, seq, len(hdr)) + hdr + payload
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({len(body)} bytes)")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Message:
    """Decode one frame body (everything after the length prefix)."""
    if len(body) < _HDR.size:
        raise ProtocolError(f"truncated frame ({len(body)} bytes)")
    type_, seq, hdr_len = _HDR.unpack_from(body)
    if type_ not in _TYPE_NAMES:
        raise ProtocolError(f"unknown message type {type_}")
    if _HDR.size + hdr_len > len(body):
        raise ProtocolError("header length exceeds frame")
    try:
        header = json.loads(body[_HDR.size : _HDR.size + hdr_len] or b"{}")
    except ValueError as exc:
        raise ProtocolError(f"corrupt JSON header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("header must be a JSON object")
    return Message(
        type=type_,
        seq=seq,
        header=header,
        payload=bytes(body[_HDR.size + hdr_len :]),
    )


class StreamFramer:
    """Incremental frame splitter: feed bytes, collect messages.

    Socket-free so property tests can drive it with arbitrary chunk
    boundaries; the asyncio paths use :func:`read_message` instead.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[Message]:
        self._buf.extend(data)
        out: list[Message] = []
        while True:
            if len(self._buf) < _LEN.size:
                return out
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(f"frame length {length} exceeds cap")
            if len(self._buf) < _LEN.size + length:
                return out
            body = bytes(self._buf[_LEN.size : _LEN.size + length])
            del self._buf[: _LEN.size + length]
            out.append(decode_body(body))

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)


async def read_message(reader) -> Message | None:
    """Read one message from an ``asyncio.StreamReader``.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`ProtocolError` (mid-frame EOF counts) otherwise.
    """
    import asyncio

    try:
        raw_len = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("EOF inside frame length") from exc
    (length,) = _LEN.unpack(raw_len)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds cap")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("EOF inside frame body") from exc
    return decode_body(body)


# ---------------------------------------------------------------------
# frame <-> band serialisation
# ---------------------------------------------------------------------
def band_bytes(frame, row: int) -> bytes:
    """Serialise one MB-row band (16 luma + 8 chroma rows) of a frame."""
    y0 = row * 16
    c0 = row * 8
    return (
        frame.y[y0 : y0 + 16].tobytes()
        + frame.cb[c0 : c0 + 8].tobytes()
        + frame.cr[c0 : c0 + 8].tobytes()
    )


def band_into(frame, row: int, payload: bytes) -> None:
    """Scatter one serialised band back into a frame's planes."""
    import numpy as np

    yw = frame.y.shape[1]
    cw = frame.cb.shape[1]
    ny, nc = 16 * yw, 8 * cw
    if len(payload) != ny + 2 * nc:
        raise ProtocolError(
            f"band payload {len(payload)}B, expected {ny + 2 * nc}B"
        )
    y0, c0 = row * 16, row * 8
    frame.y[y0 : y0 + 16] = np.frombuffer(
        payload, dtype=np.uint8, count=ny
    ).reshape(16, yw)
    frame.cb[c0 : c0 + 8] = np.frombuffer(
        payload, dtype=np.uint8, count=nc, offset=ny
    ).reshape(8, cw)
    frame.cr[c0 : c0 + 8] = np.frombuffer(
        payload, dtype=np.uint8, count=nc, offset=ny + nc
    ).reshape(8, cw)
