"""``repro.exec``: the unified task-graph executor.

One execution substrate for every parallel decode path in the repo.
Historically ``repro.parallel.mp`` (GOP grain), ``repro.parallel.
mp_slice`` (slice grain) and ``repro.serve`` (multi-stream) each
carried a private copy of the same machinery: shared-memory frame
pools and bitstream arenas, a liveness-polled result wait, worker
teardown ordering, trace-shard collection.  This package hoists that
machinery into one place and layers a planner/executor split on top:

* :mod:`repro.exec.shm` — the shared-memory substrate
  (:class:`FrameLayout`, :class:`SharedFramePool`,
  :class:`LocalFramePool`, :class:`StreamArena`).
* :mod:`repro.exec.backend` — the persistent worker-pool backend:
  pool registry, liveness polling (:data:`LIVENESS_POLL_S`), dead
  worker detection, canonical teardown, trace-shard collection, and
  the GOP-chunk worker body every GOP-grain decode dispatches through.
* :mod:`repro.exec.graph` — typed task nodes
  (parse / reconstruct / publish) with explicit ref-dependency edges
  and conservation accounting.
* :mod:`repro.exec.plan` — planners that lower a scan index into a
  :class:`~repro.exec.graph.TaskGraph` at GOP or slice grain.
* :mod:`repro.exec.auto` — the :class:`AutoGranularity` controller:
  chooses engine + grain per stream from the bandwidth profiler's
  cost estimate and re-picks at GOP boundaries from observed obs
  stage timings.
* :mod:`repro.exec.executor` — :class:`TaskGraphExecutor`, the
  unified front end behind ``--grain auto|gop|slice`` and
  ``--engine auto|scalar|batched``.

The legacy modules remain as *planners* over this substrate and
re-export the moved names, so existing imports keep working.
"""

from repro.exec.auto import AutoGranularity, CostModel, Decision, ObsSnapshot
from repro.exec.backend import (
    LIVENESS_POLL_S,
    collect_trace_shards,
    get_persistent_pool,
    invalidate_persistent_pool,
    persistent_worker_pids,
    shutdown_persistent_pools,
)
from repro.exec.executor import TaskGraphExecutor, decode_auto
from repro.exec.graph import TaskGraph, TaskNode
from repro.exec.plan import plan_gop_graph, plan_slice_graph
from repro.exec.shm import (
    FrameLayout,
    FramePoolBase,
    LocalFramePool,
    SharedFramePool,
    StreamArena,
)

__all__ = [
    "AutoGranularity",
    "CostModel",
    "Decision",
    "ObsSnapshot",
    "LIVENESS_POLL_S",
    "collect_trace_shards",
    "get_persistent_pool",
    "invalidate_persistent_pool",
    "persistent_worker_pids",
    "shutdown_persistent_pools",
    "TaskGraphExecutor",
    "decode_auto",
    "TaskGraph",
    "TaskNode",
    "plan_gop_graph",
    "plan_slice_graph",
    "FrameLayout",
    "FramePoolBase",
    "LocalFramePool",
    "SharedFramePool",
    "StreamArena",
]
