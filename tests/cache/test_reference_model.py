"""Cache simulator vs a brute-force reference model (property test).

The production simulator collapses same-line runs and keeps LRU state
in per-set dicts; the reference model below is a deliberately naive
list-based implementation with none of those optimisations.  On random
multi-processor traces, hit/miss counts must agree exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache import CacheConfig, simulate
from repro.cache.trace import AddressSpaceLayout, MemoryTrace


def reference_simulate(trace, config):
    """Naive per-reference LRU simulation with write-invalidate."""
    n = trace.processors
    ways = config.ways
    n_sets = config.n_sets
    caches = [[[] for _ in range(n_sets)] for _ in range(n)]  # MRU last
    misses = [0] * n
    for addr, write, proc in zip(trace.addr, trace.write, trace.proc):
        line = int(addr) >> (int(config.line_size).bit_length() - 1)
        p = int(proc)
        s = caches[p][line % n_sets]
        if line in s:
            s.remove(line)
            s.append(line)
        else:
            misses[p] += 1
            s.append(line)
            if len(s) > ways:
                s.pop(0)
        if write:
            for q in range(n):
                if q != p:
                    other = caches[q][line % n_sets]
                    if line in other:
                        other.remove(line)
    return misses


def make_trace(addrs, writes, procs, processors):
    layout = AddressSpaceLayout(
        coded_width=16, coded_height=16, stream_bytes=64, processors=processors
    )
    return MemoryTrace(
        addr=np.asarray(addrs, dtype=np.int64),
        write=np.asarray(writes, dtype=bool),
        proc=np.asarray(procs, dtype=np.int16),
        processors=processors,
        layout=layout,
    )


trace_strategy = st.tuples(
    st.integers(1, 3),  # processors
    st.lists(
        st.tuples(
            st.integers(0, 40),   # line index (small space forces evictions)
            st.booleans(),        # write?
            st.integers(0, 2),    # proc (mod processors)
        ),
        min_size=1,
        max_size=300,
    ),
)

config_strategy = st.sampled_from(
    [
        CacheConfig(line_size=64, capacity=512, associativity=0),   # 8-line FA
        CacheConfig(line_size=64, capacity=512, associativity=1),   # DM
        CacheConfig(line_size=64, capacity=1024, associativity=2),
        CacheConfig(line_size=128, capacity=1024, associativity=0),
    ]
)


@given(trace_strategy, config_strategy)
@settings(max_examples=120, deadline=None)
def test_simulator_matches_reference_model(spec, config):
    processors, refs = spec
    addrs = [line * 64 + 4 * (line % 3) for line, _, _ in refs]
    writes = [w for _, w, _ in refs]
    procs = [p % processors for _, _, p in refs]
    trace = make_trace(addrs, writes, procs, processors)

    total, per = simulate(trace, config)
    expected = reference_simulate(trace, config)

    assert [s.misses for s in per] == expected
    assert total.misses == sum(expected)
    assert total.refs == len(refs)
    # Miss classes always partition the misses.
    assert total.misses == (
        total.cold_misses + total.coherence_misses + total.capacity_conflict_misses
    )
