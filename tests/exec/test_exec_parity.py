"""Cross-path differential matrix: the unified executor vs the oracle.

:class:`~repro.exec.executor.TaskGraphExecutor` is the single front
end every decode path now runs through, so its contract is pinned the
strongest way available: for **every** committed golden vector and
**every** ``(grain, engine, workers)`` combination, decoded pixels,
display order, and aggregate work counters must equal the sequential
scalar oracle's, and the committed *negative* vectors must be rejected
with exactly the pinned exception class.

The full 3x3 grain/engine matrix runs at ``workers=0`` (the
deterministic in-process fallback — cheap, and the combination logic
is identical).  Real worker processes are then exercised at 1, 2 and
4 workers on representative vectors: correctness cannot depend on
pool size (parity at any size proves the merge/ordering logic), while
running *every* combination through real fork+exec per test would buy
no additional coverage for its wall-clock cost.
"""

from __future__ import annotations

import pytest

from repro.exec import TaskGraphExecutor
from repro.mpeg2.counters import WorkCounters

GRAINS = ("gop", "slice", "auto")
ENGINES = ("scalar", "batched", "auto")

#: The matrix cells exercised through real worker processes (slice
#: grain spawns fresh workers per run, so it gets focused coverage).
REAL_WORKER_COUNTS = (1, 2, 4)


def decode_exec(data: bytes, grain: str, engine: str, workers: int, **kw):
    counters = WorkCounters()
    ex = TaskGraphExecutor(
        data, grain=grain, engine=engine, workers=workers, **kw
    )
    frames = ex.decode_all(counters)
    return ex, frames, counters


def assert_exec_parity(golden, name: str, grain: str, engine: str,
                       workers: int) -> None:
    data = golden.data(name)
    ref_frames, ref_counters = golden.scalar(name)
    ex, frames, counters = decode_exec(data, grain, engine, workers)
    assert [f.digest() for f in frames] == [f.digest() for f in ref_frames], (
        f"{name} grain={grain} engine={engine} workers={workers}: "
        f"pixels diverged from the scalar oracle"
    )
    assert [f.temporal_reference for f in frames] == [
        f.temporal_reference for f in ref_frames
    ]
    assert counters == ref_counters, (
        f"{name} grain={grain} engine={engine} workers={workers}: "
        f"work counters diverged from the scalar oracle"
    )
    # The executor's own records: at least one decision, and every
    # executed segment's task graph settled with conserved counts.
    assert ex.last_decisions, "no Decision recorded"
    assert ex.last_graphs, "no accounting graph recorded"
    for graph in ex.last_graphs:
        assert graph.is_settled()
        graph.verify_conservation()


class TestFullMatrixInProcess:
    """Every golden vector x every (grain, engine), in-process."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("grain", GRAINS)
    @pytest.mark.parametrize(
        "name",
        [
            "altscan_48x32_gop7",
            "intra_16x16_gop1",
            "ipb_64x48_gop13",
            "pad_40x24_gop4",
            "rc_64x48_gop4",
            "two_gop_48x32",
        ],
    )
    def test_matrix_cell(self, golden, name, grain, engine):
        assert_exec_parity(golden, name, grain, engine, workers=0)

    def test_decision_reasons(self, golden):
        # Pinned both axes -> "fixed"; any auto axis -> model-driven.
        data = golden.data("two_gop_48x32")
        ex, _, _ = decode_exec(data, "gop", "batched", 0)
        assert [d.reason for d in ex.last_decisions] == ["fixed"]
        ex, _, _ = decode_exec(data, "auto", "auto", 0)
        assert ex.last_decisions[0].reason == "profile"
        for d in ex.last_decisions[1:]:
            assert d.reason in ("steady", "worker-idle", "sync-bound")

    def test_auto_windows_cover_every_gop(self, golden):
        # Auto grain decodes in repick windows; with a 1-GOP window the
        # per-window accounting graphs must tile the stream exactly.
        data = golden.data("ipb_64x48_gop13")
        counters = WorkCounters()
        ex = TaskGraphExecutor(
            data, grain="auto", engine="batched", workers=0, repick_gops=1
        )
        frames = ex.decode_all(counters)
        ref_frames, ref_counters = golden.scalar("ipb_64x48_gop13")
        assert [f.digest() for f in frames] == [
            f.digest() for f in ref_frames
        ]
        assert counters == ref_counters
        assert len(ex.last_graphs) == len(ex.index.gops)
        assert len(ex.last_decisions) == len(ex.index.gops)


class TestRealWorkers:
    """Representative cells through real worker processes."""

    @pytest.mark.parametrize("workers", REAL_WORKER_COUNTS)
    def test_gop_grain_pool_sizes(self, golden, workers):
        assert_exec_parity(
            golden, "two_gop_48x32", "gop", "batched", workers
        )

    @pytest.mark.parametrize("workers", (1, 2))
    def test_slice_grain_real_workers(self, golden, workers):
        assert_exec_parity(
            golden, "ipb_64x48_gop13", "slice", "batched", workers
        )

    def test_auto_grain_real_workers(self, golden):
        assert_exec_parity(golden, "two_gop_48x32", "auto", "auto", 2)

    def test_scalar_engine_real_workers(self, golden):
        assert_exec_parity(golden, "two_gop_48x32", "gop", "scalar", 2)


class TestNegativeVectors:
    """The committed hostile streams, through the executor."""

    #: The grain/engine shapes each negative runs under (full 3x3 adds
    #: nothing: the reject happens in scan or slice decode, both
    #: engine-independent).
    COMBOS = (("gop", "batched"), ("slice", "batched"), ("auto", "auto"))

    @pytest.mark.parametrize("combo", COMBOS, ids=lambda c: "/".join(c))
    @pytest.mark.parametrize(
        "name",
        [
            "neg_fuzz010_trunc_vlc_error",
            "neg_fuzz027_splice_bitstream_error",
            "neg_open_gop_seek",
        ],
    )
    def test_error_negatives_pinned_class(self, golden, name, combo):
        grain, engine = combo
        data = golden.data(name)
        want = golden.negative[name]["error"]
        try:
            decode_exec(data, grain, engine, 0)
        except Exception as exc:
            assert type(exc).__name__ == want, (
                f"executor grain={grain} rejected {name} with "
                f"{type(exc).__name__}, pinned class is {want}"
            )
        else:
            raise AssertionError(
                f"executor grain={grain} decoded {name}, "
                f"pinned verdict is {want}"
            )

    @pytest.mark.parametrize("combo", COMBOS, ids=lambda c: "/".join(c))
    @pytest.mark.parametrize(
        "name",
        [
            "neg_duplicated_slice",
            "neg_shuffled_slices",
            "neg_fuzz013_trunc_zero_slice",
        ],
    )
    def test_decodable_negatives_pinned_digests(self, golden, name, combo):
        grain, engine = combo
        data = golden.data(name)
        _, frames, counters = decode_exec(data, grain, engine, 0)
        assert [f.digest() for f in frames] == (
            golden.negative[name]["frame_digests"]
        ), f"executor grain={grain} diverged on {name}"
        ref = WorkCounters()
        from repro.mpeg2.decoder import SequenceDecoder

        SequenceDecoder(data, engine="scalar").decode_all(ref)
        assert counters == ref


class TestArguments:
    def test_invalid_grain_and_engine(self, golden):
        data = golden.data("two_gop_48x32")
        with pytest.raises(ValueError, match="grain"):
            TaskGraphExecutor(data, grain="bogus")
        with pytest.raises(ValueError, match="engine"):
            TaskGraphExecutor(data, engine="bogus")
        with pytest.raises(ValueError, match="workers"):
            TaskGraphExecutor(data, workers=-1)
        with pytest.raises(ValueError, match="repick_gops"):
            TaskGraphExecutor(data, repick_gops=0)

    def test_decode_auto_convenience(self, golden):
        from repro.exec import decode_auto

        data = golden.data("two_gop_48x32")
        ref_frames, _ = golden.scalar("two_gop_48x32")
        frames = decode_auto(data, workers=0)
        assert [f.digest() for f in frames] == [
            f.digest() for f in ref_frames
        ]
