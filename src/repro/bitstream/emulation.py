"""Start-code emulation prevention.

The paper's parallel decoders rely on start codes being unique,
byte-aligned sync points: the scan process locates GOP / picture /
slice tasks purely by searching for ``00 00 01``.  The real MPEG-2
tables are hand-crafted so no legal VLC sequence emulates a start code;
our constructed codebooks don't carry that guarantee, so we apply
H.264-style emulation prevention at the byte layer instead: inside
every payload, a ``00 00`` pair followed by a byte <= 0x03 gets a
``0x03`` stuffing byte inserted.  The property "no ``00 00 01`` inside
any escaped payload" is verified by the test suite, which is exactly
the property the scan process needs.
"""

from __future__ import annotations


def escape_payload(payload: bytes) -> bytes:
    """Insert emulation-prevention bytes into ``payload``.

    After escaping, the payload contains no ``00 00 0x`` pattern with
    ``x <= 3``, hence no start-code prefix.
    """
    out = bytearray()
    zeros = 0
    for b in payload:
        if zeros >= 2 and b <= 0x03:
            out.append(0x03)
            zeros = 0
        out.append(b)
        zeros = zeros + 1 if b == 0 else 0
    return bytes(out)


def unescape_payload(payload: bytes) -> bytes:
    """Remove emulation-prevention bytes (inverse of escape_payload)."""
    out = bytearray()
    zeros = 0
    i = 0
    n = len(payload)
    while i < n:
        b = payload[i]
        if zeros >= 2 and b == 0x03:
            # Stuffing byte: drop it, reset the zero run.
            zeros = 0
            i += 1
            continue
        out.append(b)
        zeros = zeros + 1 if b == 0 else 0
        i += 1
    return bytes(out)


def contains_start_code_prefix(payload: bytes) -> bool:
    """True if ``payload`` contains the ``00 00 01`` prefix."""
    return b"\x00\x00\x01" in payload
