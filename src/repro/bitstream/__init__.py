"""Bit-level I/O and MPEG start-code handling.

MPEG streams are a sequence of variable-length codes interspersed with
byte-aligned *start codes* (the 24-bit prefix ``0x000001`` followed by a
one-byte code value).  This package provides:

* :class:`~repro.bitstream.writer.BitWriter` — MSB-first bit emission.
* :class:`~repro.bitstream.reader.BitReader` — MSB-first bit parsing with
  cheap position save/restore (needed for speculative VLC decode).
* :mod:`~repro.bitstream.startcodes` — the start-code constants of the
  MPEG-2 video syntax and a fast scanner used by the paper's *scan
  process* to find GOP / picture / slice boundaries without decoding.
"""

from repro.bitstream.reader import BitReader
from repro.bitstream.writer import BitWriter
from repro.bitstream.startcodes import (
    START_CODE_PREFIX,
    SEQUENCE_HEADER_CODE,
    SEQUENCE_END_CODE,
    GROUP_START_CODE,
    PICTURE_START_CODE,
    USER_DATA_START_CODE,
    EXTENSION_START_CODE,
    SLICE_START_CODE_MIN,
    SLICE_START_CODE_MAX,
    is_slice_start_code,
    find_start_codes,
    StartCodeHit,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "START_CODE_PREFIX",
    "SEQUENCE_HEADER_CODE",
    "SEQUENCE_END_CODE",
    "GROUP_START_CODE",
    "PICTURE_START_CODE",
    "USER_DATA_START_CODE",
    "EXTENSION_START_CODE",
    "SLICE_START_CODE_MIN",
    "SLICE_START_CODE_MAX",
    "is_slice_start_code",
    "find_start_codes",
    "StartCodeHit",
]
