"""Huffman construction and the VLC engine, including all MPEG tables."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.huffman import (
    build_codebook,
    canonical_codes,
    geometric_weights,
    huffman_code_lengths,
)
from repro.mpeg2.tables import (
    AC_RUN_LEVEL,
    CODED_BLOCK_PATTERN,
    DC_SIZE_CHROMA,
    DC_SIZE_LUMA,
    MB_ADDRESS_INCREMENT,
    MB_TYPE_B,
    MB_TYPE_I,
    MB_TYPE_P,
    MOTION_CODE,
    MbMode,
)
from repro.mpeg2.vlc import VLCError, VLCTable

ALL_TABLES = [
    DC_SIZE_LUMA,
    DC_SIZE_CHROMA,
    AC_RUN_LEVEL,
    MB_ADDRESS_INCREMENT,
    MB_TYPE_I,
    MB_TYPE_P,
    MB_TYPE_B,
    CODED_BLOCK_PATTERN,
    MOTION_CODE,
]


class TestHuffman:
    def test_two_symbols_get_one_bit_each(self):
        lengths = huffman_code_lengths({"a": 3.0, "b": 1.0})
        assert lengths == {"a": 1, "b": 1}

    def test_single_symbol(self):
        assert huffman_code_lengths({"x": 1.0}) == {"x": 1}

    def test_rarer_symbols_never_shorter(self):
        weights = geometric_weights(list(range(10)), ratio=0.5)
        lengths = huffman_code_lengths(weights)
        ordered = [lengths[i] for i in range(10)]
        assert ordered == sorted(ordered)

    def test_kraft_equality(self):
        lengths = huffman_code_lengths(geometric_weights(list(range(20))))
        assert sum(2.0 ** -l for l in lengths.values()) == pytest.approx(1.0)

    def test_canonical_codes_prefix_free(self):
        codes = canonical_codes({"a": 2, "b": 2, "c": 3, "d": 3, "e": 2})
        values = list(codes.values())
        for i, ci in enumerate(values):
            for j, cj in enumerate(values):
                if i != j:
                    assert not cj.startswith(ci)

    def test_canonical_rejects_kraft_violation(self):
        with pytest.raises(ValueError):
            canonical_codes({"a": 1, "b": 1, "c": 1})

    def test_length_limit_enforced(self):
        # 40 symbols with brutally skewed weights: unlimited Huffman
        # would need ~39-bit codes.
        symbols = list(range(40))
        codes = build_codebook(geometric_weights(symbols, ratio=0.3), max_length=12)
        assert max(len(c) for c in codes.values()) <= 12
        assert set(codes) == set(symbols)

    def test_deterministic(self):
        w = geometric_weights(list("abcdefgh"))
        assert build_codebook(w) == build_codebook(w)

    @given(st.integers(2, 60), st.floats(0.3, 0.95))
    def test_build_codebook_always_prefix_free(self, n, ratio):
        codes = build_codebook(geometric_weights(list(range(n)), ratio=ratio))
        # VLCTable validates prefix-freeness on construction.
        VLCTable(codes, name="prop")


class TestVLCTable:
    def test_rejects_non_prefix_free(self):
        with pytest.raises(ValueError, match="prefix-free"):
            VLCTable({"a": "0", "b": "01"})

    def test_rejects_empty_and_bad_codewords(self):
        with pytest.raises(ValueError):
            VLCTable({})
        with pytest.raises(ValueError):
            VLCTable({"a": "012"})

    def test_encode_unknown_symbol(self):
        t = VLCTable({"a": "0", "b": "1"})
        with pytest.raises(VLCError):
            t.encode(BitWriter(), "c")

    def test_invalid_codeword_detected(self):
        t = VLCTable({"a": "00", "b": "01", "c": "10"})  # '11' unused
        r = BitReader(bytes([0b11000000]))
        with pytest.raises(VLCError):
            t.decode(r)

    def test_truncated_stream_detected(self):
        t = VLCTable({"a": "0", "b": "111"})
        w = BitWriter()
        t.encode(w, "b")
        w.align()
        r = BitReader(w.getvalue())
        assert t.decode(r) == "b"
        # Remaining padding decodes as 'a's until exhaustion; reading
        # past the end must raise, not loop.
        for _ in range(5):
            assert t.decode(r) == "a"
        with pytest.raises(VLCError):
            t.decode(r)

    @pytest.mark.parametrize("table", ALL_TABLES, ids=lambda t: t.name)
    def test_every_mpeg_table_roundtrips_all_symbols(self, table):
        w = BitWriter()
        symbols = table.symbols()
        for s in symbols:
            table.encode(w, s)
        w.align()
        r = BitReader(w.getvalue())
        for s in symbols:
            assert table.decode(r) == s

    @pytest.mark.parametrize("table", ALL_TABLES, ids=lambda t: t.name)
    def test_table_length_cap(self, table):
        assert table.max_len <= 17  # MPEG's own tables stop at 17 bits

    def test_mb_type_I_uses_standard_codes(self):
        assert MB_TYPE_I.codeword(MbMode(intra=True)) == "1"
        assert MB_TYPE_I.codeword(MbMode(intra=True, quant=True)) == "01"

    def test_mb_type_P_most_common_is_one_bit(self):
        assert MB_TYPE_P.codeword(MbMode(mc_fwd=True, coded=True)) == "1"

    def test_common_symbols_get_short_codes(self):
        # EOB is the most frequent AC symbol and must be near-minimal.
        assert AC_RUN_LEVEL.code_length("EOB") <= 3
        assert AC_RUN_LEVEL.code_length((0, 1)) <= 3
        # Increment 1 dominates macroblock addressing.
        assert MB_ADDRESS_INCREMENT.code_length(1) <= 2
        assert MOTION_CODE.code_length(0) <= 2

    def test_mbmode_validation(self):
        with pytest.raises(ValueError):
            MbMode(intra=True, coded=True)
