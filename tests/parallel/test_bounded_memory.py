"""Bounded-frame-pool GOP decoding: the fix for the Fig. 8/9 blow-up."""

from __future__ import annotations

import pytest

from repro.mpeg2.decoder import decode_sequence
from repro.parallel import GopLevelDecoder, ParallelConfig, profile_stream
from repro.parallel.profile import tile_profile
from repro.smp import challenge


@pytest.fixture(scope="module")
def profile(medium_stream):
    p, _ = profile_stream(medium_stream)
    return tile_profile(p, 8)  # 16 GOPs, 208 pictures


def cfg(workers, cap=None):
    return ParallelConfig(
        workers=workers, machine=challenge(16), max_frames_in_flight=cap
    )


class TestBoundedPool:
    def test_cap_validated(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=1, max_frames_in_flight=0)

    def test_memory_respects_cap(self, profile):
        cap = 20
        result = GopLevelDecoder(profile).run(cfg(6, cap))
        # The front-GOP exemption can exceed the cap by at most one
        # GOP's worth of frames.
        limit = (cap + profile.gop_size) * profile.frame_bytes
        assert result.memory.peak("frames") <= limit
        assert len(result.display_times) == profile.picture_count

    def test_bounded_uses_less_memory_than_unbounded(self, profile):
        unbounded = GopLevelDecoder(profile).run(cfg(6))
        bounded = GopLevelDecoder(profile).run(cfg(6, cap=16))
        assert bounded.memory.peak("frames") < unbounded.memory.peak("frames")

    def test_throughput_tradeoff_is_graceful(self, profile):
        """A cap of ~workers x GOP size costs little; a tight cap
        serialises toward single-worker speed but never deadlocks."""
        free = GopLevelDecoder(profile).run(cfg(6)).pictures_per_second
        roomy = GopLevelDecoder(profile).run(
            cfg(6, cap=6 * profile.gop_size)
        ).pictures_per_second
        tight = GopLevelDecoder(profile).run(cfg(6, cap=2)).pictures_per_second
        assert roomy > 0.9 * free
        assert 0 < tight < roomy

    @pytest.mark.parametrize("cap", [1, 2, 5, 13])
    def test_no_deadlock_at_any_cap(self, profile, cap):
        result = GopLevelDecoder(profile).run(cfg(8, cap))
        assert len(result.display_times) == profile.picture_count
        assert result.display_times == sorted(result.display_times)

    def test_output_identical_under_cap(self, medium_stream):
        base, _ = profile_stream(medium_stream)
        ref = decode_sequence(medium_stream)
        result = GopLevelDecoder(base, medium_stream).run(
            ParallelConfig(
                workers=2, machine=challenge(16),
                max_frames_in_flight=4, execute=True,
            )
        )
        for a, b in zip(ref, result.frames):
            assert a.same_pixels(b)

    def test_no_leak(self, profile):
        result = GopLevelDecoder(profile).run(cfg(4, cap=8))
        assert result.memory.final_usage().get("frames", 0) == 0
