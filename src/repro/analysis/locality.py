"""Locality analysis helpers for the Section 5.3 experiments."""

from __future__ import annotations

from collections.abc import Mapping


def working_set_knee(
    miss_rates: Mapping[int, float], threshold: float = 0.35
) -> int | None:
    """The capacity at which the miss rate collapses (Fig. 14's knee).

    Returns the smallest capacity whose miss rate falls below
    ``threshold`` times the smallest-capacity rate, or ``None`` if the
    sweep never gets there (the working set exceeds every cache
    evaluated — the paper's direct-mapped caveat).
    """
    if not miss_rates:
        raise ValueError("empty miss-rate sweep")
    capacities = sorted(miss_rates)
    base = miss_rates[capacities[0]]
    if base == 0.0:
        return capacities[0]
    for cap in capacities:
        if miss_rates[cap] < threshold * base:
            return cap
    return None


def spatial_locality_score(miss_rates: Mapping[int, float]) -> float:
    """Mean per-doubling improvement of a line-size sweep (Fig. 13).

    2.0 means the miss rate exactly halves per line-size doubling —
    perfectly sequential access; 1.0 means no spatial locality at all.
    """
    sizes = sorted(miss_rates)
    if len(sizes) < 2:
        raise ValueError("need at least two line sizes")
    ratios = []
    for a, b in zip(sizes, sizes[1:]):
        if miss_rates[b] == 0.0:
            continue
        ratios.append(miss_rates[a] / miss_rates[b])
    if not ratios:
        raise ValueError("all larger-line miss rates are zero")
    return sum(ratios) / len(ratios)


def amdahl_speedup(serial_fraction: float, processors: int) -> float:
    """Amdahl's law — the macroblock-level decomposition's ceiling."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial fraction out of range: {serial_fraction}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / processors)
