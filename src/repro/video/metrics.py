"""Quality metrics: PSNR between source and decoded frames."""

from __future__ import annotations

import math

import numpy as np

from repro.mpeg2.frame import Frame


def psnr(reference: Frame, decoded: Frame) -> float:
    """Luma PSNR (dB) over the display rectangle.

    Returns ``inf`` for identical planes.
    """
    ref, _, _ = reference.display_view()
    dec, _, _ = decoded.display_view()
    if ref.shape != dec.shape:
        raise ValueError(f"frame shapes differ: {ref.shape} vs {dec.shape}")
    mse = float(np.mean((ref.astype(np.float64) - dec.astype(np.float64)) ** 2))
    if mse == 0.0:
        return math.inf
    return 10.0 * math.log10(255.0**2 / mse)


def sequence_psnr(reference: list[Frame], decoded: list[Frame]) -> float:
    """Mean luma PSNR across a sequence (inf-safe: clipped at 99 dB)."""
    if len(reference) != len(decoded):
        raise ValueError(
            f"sequence lengths differ: {len(reference)} vs {len(decoded)}"
        )
    values = [min(psnr(r, d), 99.0) for r, d in zip(reference, decoded)]
    return sum(values) / len(values)
