"""Simulated task queues: the 1-D GOP queue and the 2-D slice queue.

Queue methods are *generator helpers*: simulated processes call them
with ``yield from`` so the queue can charge cycles and block on engine
conditions.  Every queue access costs ``queue_op_cycles`` (the paper
measures task-queue/lock time and finds it negligible but nonzero).

The 2-D queue (paper Fig. 4, Section 5.2) holds pictures at the first
level and slices at the second; its *availability rule* is what
distinguishes the simple slice decoder (a picture's slices open up
only when every earlier picture has completed — a barrier at every
picture) from the improved one (they open up as soon as the picture's
reference pictures have completed — a barrier only at I/P pictures).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator

from repro.obs.stalls import REASON_QUEUE_GET
from repro.parallel.profile import GopProfile, PictureProfile
from repro.smp.engine import Compute, SignalCondition, WaitCondition
from repro.smp.sync import Condition


class SimQueue:
    """A FIFO queue with blocking get, for simulated processes."""

    def __init__(self, name: str, op_cycles: int) -> None:
        self.name = name
        self.op_cycles = op_cycles
        self._items: deque = deque()
        self._closed = False
        # Blocking gets are empty-queue waits: attribute them to the
        # canonical "queue.get" stall reason (same name the real mp
        # pipeline uses for its result-queue / worker-idle waits).
        self._cond = Condition(f"{name}.cond", reason=REASON_QUEUE_GET)
        #: High-water mark (diagnostics, memory discussions).
        self.max_depth = 0

    def put(self, item) -> Generator:
        """Enqueue; wakes blocked getters.  (yield-from helper)"""
        if self._closed:
            raise RuntimeError(f"put() on closed queue {self.name}")
        self._items.append(item)
        self.max_depth = max(self.max_depth, len(self._items))
        yield Compute(self.op_cycles)
        yield SignalCondition(self._cond)

    def close(self) -> Generator:
        """No more items; blocked getters drain then receive ``None``."""
        self._closed = True
        yield SignalCondition(self._cond)

    def get(self) -> Generator:
        """Dequeue one item, blocking while empty; ``None`` when closed."""
        while True:
            if self._items:
                item = self._items.popleft()
                yield Compute(self.op_cycles)
                return item
            if self._closed:
                return None
            yield WaitCondition(self._cond)

    def __len__(self) -> int:
        return len(self._items)


# ----------------------------------------------------------------------
# 2-D picture/slice queue
# ----------------------------------------------------------------------
@dataclass
class PictureEntry:
    """Queue state of one picture (paper's first-level queue node)."""

    gop: GopProfile
    picture: PictureProfile
    #: Global sequence number in coding order across the stream.
    order: int
    #: Global coding-order numbers of pictures this one references.
    dependencies: list[int]
    unclaimed: deque = field(default_factory=deque)  # slice indices
    remaining: int = 0
    started: bool = False
    complete: bool = False

    def __post_init__(self) -> None:
        self.unclaimed = deque(range(len(self.picture.slices)))
        self.remaining = len(self.picture.slices)


@dataclass(frozen=True)
class SliceTask:
    """One unit of work handed to a worker."""

    entry: PictureEntry
    slice_index: int


class SliceTaskQueue:
    """The 2-D task queue with a pluggable availability rule.

    ``mode`` is ``"simple"`` (synchronise at every picture) or
    ``"improved"`` (synchronise only at reference pictures).
    """

    def __init__(self, name: str, op_cycles: int, mode: str) -> None:
        if mode not in ("simple", "improved"):
            raise ValueError(f"unknown slice queue mode: {mode}")
        self.name = name
        self.op_cycles = op_cycles
        self.mode = mode
        self.entries: list[PictureEntry] = []
        self._complete_count = 0
        self._finished_feeding = False
        self._cond = Condition(f"{name}.cond", reason=REASON_QUEUE_GET)
        #: First index that may still have unclaimed slices (scan hint).
        self._head = 0

    # -- scan side -----------------------------------------------------
    def add_picture(self, entry: PictureEntry) -> Generator:
        self.entries.append(entry)
        yield Compute(self.op_cycles)
        yield SignalCondition(self._cond)

    def finish_feeding(self) -> Generator:
        self._finished_feeding = True
        yield SignalCondition(self._cond)

    # -- availability --------------------------------------------------
    def _available(self, entry: PictureEntry) -> bool:
        if self.mode == "simple":
            # Every earlier picture (coding order) must be complete.
            return self._complete_count >= entry.order
        # improved: only the references must be complete.
        return all(self.entries[d].complete for d in entry.dependencies)

    def _claim_next(self) -> SliceTask | None:
        # Serve slices from the earliest available picture: keeps
        # memory low and matches the paper's in-order queue.
        while self._head < len(self.entries) and not self.entries[self._head].unclaimed:
            self._head += 1
        for entry in self.entries[self._head :]:
            if not entry.unclaimed:
                continue
            if not self._available(entry):
                if self.mode == "simple":
                    # In-order rule: nothing later can be available.
                    return None
                continue
            entry.started = True
            return SliceTask(entry=entry, slice_index=entry.unclaimed.popleft())
        return None

    # -- worker side ----------------------------------------------------
    def get_slice(self) -> Generator:
        """Claim the next available slice; ``None`` when the stream is done."""
        while True:
            task = self._claim_next()
            if task is not None:
                yield Compute(self.op_cycles)
                return task
            if self._finished_feeding and self._complete_count == len(self.entries):
                return None
            yield WaitCondition(self._cond)

    def complete_slice(self, task: SliceTask) -> Generator:
        """Report a finished slice; returns True if its picture completed.

        The completion decision is taken atomically with the decrement,
        *before* any yield: two workers finishing the same picture's
        last slices in one engine window must elect exactly one
        completer (the classic check-after-wait race).
        """
        entry = task.entry
        entry.remaining -= 1
        finished = entry.remaining == 0
        if finished:
            entry.complete = True
            self._complete_count += 1
        yield Compute(self.op_cycles)
        if finished:
            yield SignalCondition(self._cond)
            return True
        return False

    # -- diagnostics -----------------------------------------------------
    @property
    def pictures_complete(self) -> int:
        return self._complete_count
