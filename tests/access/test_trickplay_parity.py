"""Trick-play conformance: every mode, every vector, bit-identical.

Random access is only worth having if it is *exact*: a seek, a
reverse scan, a fast-forward pass or an I-frame skim must emit frames
that are bit-for-bit the frames a linear decode would have produced
at the same display indices.  Closed GOPs make that a theorem (no
coded state crosses an entry point); this suite makes it a gate.

Three layers of pinning:

* the committed ``trickplay`` digest sets in ``digests.json`` — the
  scalar engine must reproduce them exactly (drift detection, same
  contract as the linear golden digests);
* the shared :class:`GoldenCache` trick oracle — the planner's
  selection over the one session-wide linear decode — compared
  frame-for-frame against the batched engine and the mp path;
* the negative surface: seek past EOF and seek into an open GOP must
  refuse on every path, never emit a best-effort frame.
"""

from __future__ import annotations

import json

import pytest

from repro.access import (
    FF_GOP_STRIDE,
    SeekError,
    plan_trick,
    trick_decode,
    trick_decode_mp,
)
from repro.mpeg2.index import StreamIndexError, build_index

from tests.conftest import DIGEST_PATH
from tests.mpeg2.test_golden_vectors import load_vector

with open(DIGEST_PATH) as _fh:
    _DOC = json.load(_fh)
TRICKPLAY: dict[str, dict] = _DOC["trickplay"]
NEGATIVE: dict[str, dict] = _DOC["negative"]

VECTOR_NAMES = sorted(TRICKPLAY)

#: (vector, mode label, mode, target) for every pinned trick entry.
CASES = [
    (name, label, *(("seek", int(label.split("@")[1]))
                    if label.startswith("seek@") else (label, 0)))
    for name in VECTOR_NAMES
    for label in sorted(TRICKPLAY[name]["modes"])
]


def _ids(cases):
    return [f"{n}-{label}" for n, label, _, _ in cases]


class TestPinnedDigests:
    """The scalar engine reproduces every committed trick digest."""

    @pytest.mark.parametrize("name,label,mode,target", CASES, ids=_ids(CASES))
    def test_scalar_matches_pinned(self, golden, name, label, mode, target):
        entry = TRICKPLAY[name]["modes"][label]
        pairs = trick_decode(
            golden.data(name), mode, target=target,
            index=golden.index(name), engine="scalar",
        )
        assert [d for d, _ in pairs] == entry["display_indices"], (name, label)
        assert [f.digest() for _, f in pairs] == entry["frame_digests"], (
            f"{name} {label}: scalar trick decode drifted from the "
            "pinned digests"
        )

    @pytest.mark.parametrize("name", VECTOR_NAMES)
    def test_trick_digests_are_subsets_of_linear(self, name):
        # Transitivity anchor: every pinned trick digest IS the pinned
        # linear digest at its display index, by construction.
        linear = _DOC["streams"][name]["frame_digests"]
        for label, entry in TRICKPLAY[name]["modes"].items():
            assert entry["frame_digests"] == [
                linear[d] for d in entry["display_indices"]
            ], (name, label)


class TestEngineParity:
    """batched and mp agree with the shared linear-oracle selection."""

    @pytest.mark.parametrize("name,label,mode,target", CASES, ids=_ids(CASES))
    @pytest.mark.parametrize("path", ["batched", "mp-inprocess"])
    def test_path_matches_oracle(self, golden, name, label, mode, target, path):
        expect = golden.trick(name, mode, target=target)
        if path == "batched":
            pairs = trick_decode(
                golden.data(name), mode, target=target,
                index=golden.index(name), engine="batched",
            )
        else:
            pairs = trick_decode_mp(
                golden.data(name), mode, target=target,
                index=golden.index(name), workers=0,
            )
        assert [d for d, _ in pairs] == [d for d, _ in expect], (name, label)
        for (d, got), (_, want) in zip(pairs, expect):
            assert got.digest() == want.digest(), (
                f"{name} {label} [{path}]: display index {d} diverges "
                "from the linear oracle"
            )

    def test_mp_worker_processes_match_oracle(self, golden):
        # One real worker-pool run (the in-process fallback covered the
        # full matrix above); two GOPs so the pool actually fans out.
        name = "two_gop_48x32"
        expect = golden.trick(name, "ff2")
        pairs = trick_decode_mp(golden.data(name), "ff2", workers=2)
        assert [(d, f.digest()) for d, f in pairs] == [
            (d, f.digest()) for d, f in expect
        ]


class TestTrickSemantics:
    """Mode semantics pinned structurally, not just by digest."""

    @pytest.mark.parametrize("name", VECTOR_NAMES)
    def test_seek_emits_exact_tail(self, golden, name):
        index = golden.index(name)
        for target in TRICKPLAY[name]["seek_targets"]:
            plan = plan_trick(index, "seek", target=target)
            assert plan.display_indices(index) == list(
                range(target, index.picture_count)
            ), (name, target)

    @pytest.mark.parametrize("name", VECTOR_NAMES)
    def test_reverse_is_reversed_linear(self, golden, name):
        index = golden.index(name)
        plan = plan_trick(index, "reverse")
        assert plan.display_indices(index) == list(
            reversed(range(index.picture_count))
        )

    @pytest.mark.parametrize("name", VECTOR_NAMES)
    @pytest.mark.parametrize("rate", sorted(FF_GOP_STRIDE))
    def test_ff_emits_only_references(self, golden, name, rate):
        index = golden.index(name)
        plan = plan_trick(index, f"ff{rate}")
        by_display = {}
        for gi, gop in enumerate(index.gops):
            for rank, pic in enumerate(
                sorted(gop.pictures, key=lambda p: p.temporal_reference)
            ):
                by_display[index.gop_display_base(gi) + rank] = (
                    pic.picture_type.letter
                )
        letters = {by_display[d] for d in plan.display_indices(index)}
        assert "B" not in letters, (name, rate)


class TestNegativeSurface:
    @pytest.mark.parametrize("name", VECTOR_NAMES)
    def test_seek_past_eof_refused(self, golden, name):
        count = golden.index(name).picture_count
        for attempt in (
            lambda: trick_decode(golden.data(name), "seek", target=count),
            lambda: trick_decode_mp(
                golden.data(name), "seek", target=count, workers=0
            ),
        ):
            with pytest.raises(SeekError):
                attempt()

    def test_join_past_eof_refused(self, golden):
        index = golden.index("two_gop_48x32")
        with pytest.raises(StreamIndexError):
            index.join_point(len(index.gops))

    def test_open_gop_seek_refused_on_every_path(self):
        entry = NEGATIVE["neg_open_gop_seek"]
        data = load_vector("neg_open_gop_seek")
        target = entry["seek_target"]
        for attempt in (
            lambda: trick_decode(data, "seek", target=target, engine="scalar"),
            lambda: trick_decode(data, "seek", target=target, engine="batched"),
            lambda: trick_decode_mp(data, "seek", target=target, workers=0),
        ):
            with pytest.raises(SeekError):
                attempt()
        # join_point must refuse too: no closed GOP remains at/after 1.
        with pytest.raises(StreamIndexError):
            build_index(data).join_point(1)
