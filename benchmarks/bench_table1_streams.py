"""Table 1 — the test-stream matrix.

Paper: four resolutions x GOP sizes {4, 13, 16, 31}, 1120 pictures,
30 pics/s, 5-7 Mb/s, I/P distance 3, one slice per macroblock row.
We regenerate the matrix and report each stream's parameters plus the
measured bytes of its encoded GOP (from the gop-13 encodes; other GOP
sizes are reported via the measured bytes-per-picture).
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.video.streams import PAPER_GOP_SIZES, paper_stream_matrix

from benchmarks.conftest import BENCH_PICTURES, PAPER_CASES


def test_table1_stream_matrix(benchmark, env, record):
    def build():
        rows = []
        for res in PAPER_CASES:
            profile = env.profile(res, 13, pictures=13)
            bytes_per_pic = profile.total_bytes / profile.picture_count
            for gop_size in PAPER_GOP_SIZES:
                rows.append(
                    (
                        res,
                        gop_size,
                        profile.slices_per_picture,
                        profile.frame_bytes,
                        bytes_per_pic,
                        profile.bit_rate,
                    )
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    table = TextTable(
        ["stream", "GOP size", "slices/pic", "frame bytes", "coded B/pic", "bit rate"],
        title=(
            "Table 1: test streams "
            f"(I/P distance 3, 30 pics/s, {BENCH_PICTURES} pictures simulated)"
        ),
    )
    for res, gop, slices, fbytes, bpp, rate in rows:
        table.add_row(f"{res}/gop{gop}", gop, slices, fbytes, bpp, rate)
    out = [table.render()]

    # Paper cross-check: slices per picture are 8/15/30/60 and the
    # 1120-picture file sizes land near Table 2's 25 MB / 45 MB.
    spec_table = TextTable(
        ["resolution", "paper slices/pic", "measured", "paper file MB", "measured MB"],
        title="Cross-check against the paper (1120-picture streams)",
    )
    paper_slices = {"176x120": 8, "352x240": 15, "704x480": 30, "1408x960": 60}
    paper_file_mb = {"352x240": 25, "704x480": 25, "1408x960": 45}
    for res in PAPER_CASES:
        profile = env.profile(res, 13, pictures=13)
        mb_1120 = profile.total_bytes / profile.picture_count * 1120 / 1e6
        spec_table.add_row(
            res,
            paper_slices.get(res, "-"),
            profile.slices_per_picture,
            paper_file_mb.get(res, "-"),
            round(mb_1120, 1),
        )
    out.append(spec_table.render())
    record("\n\n".join(out))

    for res in PAPER_CASES:
        profile = env.profile(res, 13, pictures=13)
        assert profile.slices_per_picture == paper_slices.get(
            res, profile.slices_per_picture
        )
