"""GOP structure: types, coding order, reference relationships."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.mpeg2.constants import PictureType
from repro.mpeg2.gop import GopStructure

PAPER_SIZES = (4, 13, 16, 31)


class TestStructure:
    def test_paper_sizes_are_all_closed(self):
        for n in PAPER_SIZES:
            GopStructure(n, 3)  # must not raise

    def test_open_shapes_rejected(self):
        with pytest.raises(ValueError):
            GopStructure(5, 3)  # would end on a dangling B

    def test_display_types_13(self):
        types = GopStructure(13, 3).display_types()
        letters = "".join(t.letter for t in types)
        assert letters == "IBBPBBPBBPBBP"

    def test_single_picture_gop(self):
        g = GopStructure(1, 3)
        assert g.display_types() == [PictureType.I]
        assert g.coding_order() == [0]

    def test_coding_order_13(self):
        order = GopStructure(13, 3).coding_order()
        assert order == [0, 3, 1, 2, 6, 4, 5, 9, 7, 8, 12, 10, 11]

    def test_coding_order_is_permutation(self):
        for n in PAPER_SIZES:
            order = GopStructure(n, 3).coding_order()
            assert sorted(order) == list(range(n))

    def test_references_come_before_dependents_in_coding_order(self):
        for n in PAPER_SIZES:
            g = GopStructure(n, 3)
            pos = g.display_order_of_coded()
            for d in range(n):
                fwd, bwd = g.references(d)
                for ref in (fwd, bwd):
                    if ref is not None:
                        assert pos[ref] < pos[d], (
                            f"picture {d} coded before its reference {ref}"
                        )

    def test_reference_structure_13(self):
        g = GopStructure(13, 3)
        assert g.references(0) == (None, None)
        assert g.references(3) == (0, None)
        assert g.references(6) == (3, None)
        assert g.references(1) == (0, 3)
        assert g.references(5) == (3, 6)
        assert g.references(11) == (9, 12)

    def test_counts(self):
        g = GopStructure(13, 3)
        assert g.reference_count == 5
        assert g.b_count == 8

    def test_dependents(self):
        g = GopStructure(13, 3)
        assert g.dependents_of(0) == [1, 2, 3]
        assert g.dependents_of(12) == [10, 11]
        assert g.dependents_of(1) == []  # B-pictures are never references

    @given(st.integers(0, 20), st.integers(1, 5))
    def test_every_b_sits_between_its_references(self, k, m):
        g = GopStructure(1 + k * m, m)
        for d in range(g.size):
            if g.type_of(d) is PictureType.B:
                fwd, bwd = g.references(d)
                assert fwd is not None and bwd is not None
                assert fwd < d < bwd

    def test_type_of_matches_display_types(self):
        g = GopStructure(16, 3)
        assert [g.type_of(d) for d in range(16)] == g.display_types()
