"""Figure 8 — measured memory requirements of the GOP approach.

Paper: memory use grows (roughly linearly) with the number of
processors, the GOP size and the picture resolution, because every
decoded picture waits for the in-order display process while P workers
keep decoding ahead.
"""

from __future__ import annotations

from repro.analysis import TextTable, format_bytes
from repro.video.streams import PAPER_GOP_SIZES

from benchmarks.conftest import PAPER_CASES

WORKER_SWEEP = [2, 6, 10, 14]
PICTURES = 496  # enough GOPs for 14 workers at every GOP size


def test_fig8_gop_memory(benchmark, env, record):
    def run():
        out = {}
        res_list = list(PAPER_CASES)[:2]  # two resolutions suffice for the trend
        for res in res_list:
            for gop_size in (PAPER_GOP_SIZES[0], 13, PAPER_GOP_SIZES[-1]):
                for workers in WORKER_SWEEP:
                    profile = env.profile_with_gop_size(res, gop_size, PICTURES)
                    result = env.run_gop(profile, workers)
                    out[(res, gop_size, workers)] = result.memory.peak()
        return out

    peaks = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["case"] + [f"P={p}" for p in WORKER_SWEEP],
        title="Figure 8: peak memory of the GOP-level decoder",
    )
    cases = sorted({(res, gop) for res, gop, _ in peaks})
    for res, gop in cases:
        table.add_row(
            f"{res}/gop{gop}",
            *[format_bytes(peaks[(res, gop, p)]) for p in WORKER_SWEEP],
        )
    record(table.render())

    # Growth along all three axes (paper's conclusion).
    for res, gop in cases:
        assert peaks[(res, gop, 14)] > peaks[(res, gop, 2)], (res, gop)
    res_list = sorted({r for r, _, _ in peaks})
    if len(res_list) > 1:
        small, large = res_list[0], res_list[-1]
        # Note: sorted() on names puts 352x240 before 704x480.
        assert peaks[(large, 13, 14)] > peaks[(small, 13, 14)]
    gops = sorted({g for _, g, _ in peaks})
    first_res = cases[0][0]
    assert peaks[(first_res, gops[-1], 14)] > peaks[(first_res, gops[0], 14)]
