"""Table 4 — maximum frames/second of all three decoders.

Paper (14 workers):

==========  =======  =======  ========
version     352x240  704x480  1408x960
==========  =======  =======  ========
simple        27.4     15.1      6.6
improved      54.4     21.6      6.8
GOP           69.9     26.6      7.3
==========  =======  =======  ========

Shape to reproduce: GOP > improved > simple everywhere; the gap closes
at the largest resolution (more slices per picture feed the simple
version); real-time (30 fps) is reached for 352x240 and nearly for
704x480.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.parallel import SliceMode

from benchmarks.conftest import PAPER_CASES

PAPER_TABLE4 = {
    "simple": {"352x240": 27.4, "704x480": 15.1, "1408x960": 6.6},
    "improved": {"352x240": 54.4, "704x480": 21.6, "1408x960": 6.8},
    "GOP": {"352x240": 69.9, "704x480": 26.6, "1408x960": 7.3},
}
WORKERS = 14


def test_table4_max_fps_all_versions(benchmark, env, record):
    def run():
        out = {}
        for res in PAPER_CASES:
            profile = env.profile(res, 13)
            out[("simple", res)] = env.run_slice(
                profile, WORKERS, SliceMode.SIMPLE
            ).pictures_per_second
            out[("improved", res)] = env.run_slice(
                profile, WORKERS, SliceMode.IMPROVED
            ).pictures_per_second
            out[("GOP", res)] = env.run_gop(profile, WORKERS).pictures_per_second
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["version"]
        + [f"{res}" for res in PAPER_CASES]
        + [f"paper {res}" for res in PAPER_CASES],
        title=f"Table 4: max frames/sec, {WORKERS} workers",
    )
    for version in ("simple", "improved", "GOP"):
        measured = [round(rates[(version, res)], 1) for res in PAPER_CASES]
        paper = [PAPER_TABLE4[version].get(res, "-") for res in PAPER_CASES]
        table.add_row(version, *measured, *paper)
    record(table.render())

    for res in PAPER_CASES:
        si, im, gp = (
            rates[("simple", res)],
            rates[("improved", res)],
            rates[("GOP", res)],
        )
        # Paper ordering: GOP >= improved >= simple.  Our improved
        # version synchronises a little better than the paper's 1997
        # implementation (see EXPERIMENTS.md), so a narrow GOP-vs-
        # improved tie is tolerated; simple must stay clearly last.
        assert im >= si * 1.1, f"{res}: improved {im:.1f} not above simple {si:.1f}"
        assert gp >= im * 0.93, f"{res}: GOP {gp:.1f} far below improved {im:.1f}"
    if "352x240" in PAPER_CASES:
        # Real-time decoding of 352x240 must be achieved (paper's
        # headline result).
        assert rates[("improved", "352x240")] > 30.0
        assert rates[("GOP", "352x240")] > 30.0
