#!/usr/bin/env python3
"""Play control: random-access latency under the two decompositions.

The paper's Section 5.1.1 argues that the GOP-level decomposition is
"better suited to continuous play": after a fast-forward / reverse /
channel-hop, only ONE worker decodes the landing GOP, so the video
takes a whole single-threaded decode chain to reappear — while the
slice-level decomposition puts every worker on the first picture.

This example simulates a viewing session on a 16-processor Challenge:
continuous play at three resolutions, then a series of seeks, printing
the time-to-first-picture for both decoders.

Run:  python examples/play_control.py
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.parallel import profile_stream
from repro.parallel.profile import tile_profile
from repro.parallel.random_access import seek_latency
from repro.video.synthetic import SyntheticVideo


def build_profile(width: int, height: int):
    video = SyntheticVideo(width=width, height=height, seed=7)
    stream = encode_sequence(video.frames(13), EncoderConfig(gop_size=13, qscale_code=3))
    profile, _ = profile_stream(stream)
    return tile_profile(profile, 8)  # an 8-GOP clip to seek around in


def main() -> None:
    workers = 14
    table = TextTable(
        ["resolution", "GOP-level ms", "slice-level ms", "slice advantage"],
        title=f"Seek-to-display latency, {workers} workers (simulated Challenge)",
    )
    for width, height in ((176, 120), (352, 240)):
        profile = build_profile(width, height)
        lat = seek_latency(profile, gop_index=4, workers=workers)
        table.add_row(
            f"{width}x{height}",
            round(lat.gop_level * 1e3, 1),
            round(lat.slice_level * 1e3, 1),
            f"{lat.advantage:.1f}x",
        )
    print(table.render())
    print()

    # The advantage grows with the worker count — the GOP version's
    # seek path is inherently single-threaded.
    profile = build_profile(176, 120)
    sweep = TextTable(
        ["workers", "GOP-level ms", "slice-level ms"],
        title="Latency vs worker count (176x120)",
    )
    for p in (1, 2, 4, 8, 14):
        lat = seek_latency(profile, gop_index=4, workers=p)
        sweep.add_row(p, round(lat.gop_level * 1e3, 1), round(lat.slice_level * 1e3, 1))
    print(sweep.render())
    print()
    print(
        "Note how the GOP column never improves with more workers: after a\n"
        "seek, one processor decodes the landing GOP alone (paper 5.1.1),\n"
        "while the slice decomposition parallelises the first picture itself."
    )


if __name__ == "__main__":
    main()
