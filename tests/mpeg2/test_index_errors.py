"""Stream index: layering validation and malformed-stream handling."""

from __future__ import annotations

import pytest

from repro.bitstream import (
    GROUP_START_CODE,
    PICTURE_START_CODE,
    SEQUENCE_HEADER_CODE,
    BitWriter,
)
from repro.mpeg2.assembly import StreamAssembler
from repro.mpeg2.decoder import DecodeError, SequenceDecoder
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.mpeg2.headers import GopHeader, PictureHeader, SequenceHeader
from repro.mpeg2.constants import PictureType
from repro.mpeg2.index import StreamIndexError, build_index
from repro.video.synthetic import SyntheticVideo


def _segment(code, header):
    w = BitWriter()
    header.write(w)
    return code, w.getvalue()


def assemble(*segments):
    a = StreamAssembler()
    for code, payload in segments:
        a.add_segment(code, payload)
    a.add_sequence_end()
    return a.getvalue()


SEQ = _segment(SEQUENCE_HEADER_CODE, SequenceHeader(width=64, height=48))
GOP = _segment(GROUP_START_CODE, GopHeader())
PIC = _segment(
    PICTURE_START_CODE,
    PictureHeader(temporal_reference=0, picture_type=PictureType.I),
)


class TestLayeringValidation:
    def test_must_begin_with_sequence_header(self):
        with pytest.raises(StreamIndexError, match="sequence header"):
            build_index(assemble(GOP, PIC))

    def test_empty_stream(self):
        with pytest.raises(StreamIndexError):
            build_index(b"")

    def test_gop_before_sequence_rejected(self):
        # A GOP start code physically before the sequence header.
        data = assemble(GOP, SEQ, GOP, PIC)
        with pytest.raises(StreamIndexError):
            build_index(data)

    def test_picture_outside_gop_rejected(self):
        with pytest.raises(StreamIndexError, match="outside any GOP"):
            build_index(assemble(SEQ, PIC))

    def test_slice_outside_picture_rejected(self):
        with pytest.raises(StreamIndexError, match="outside any picture"):
            build_index(assemble(SEQ, GOP, (0x01, b"\x20")))

    def test_repeated_sequence_header_rejected(self):
        with pytest.raises(StreamIndexError, match="repeated"):
            build_index(assemble(SEQ, SEQ, GOP, PIC))

    def test_unexpected_start_code_rejected(self):
        with pytest.raises(StreamIndexError, match="0xB0"):
            build_index(assemble(SEQ, GOP, (0xB0, b"")))

    def test_no_gops_rejected(self):
        with pytest.raises(StreamIndexError, match="no GOPs"):
            build_index(assemble(SEQ))

    def test_data_after_sequence_end_ignored(self, small_stream):
        trailing = small_stream + b"\x00\x00\x01\xB8garbage"
        idx = build_index(trailing)
        assert len(idx.gops) == 1  # the post-end GOP is not indexed


class TestDecoderReferenceChecks:
    def _stream(self, first_type):
        """A stream whose first picture claims a predicted type."""
        pic = _segment(
            PICTURE_START_CODE,
            PictureHeader(temporal_reference=0, picture_type=first_type),
        )
        return assemble(SEQ, GOP, pic, (0x01, b"\x20"))

    def test_p_without_reference_raises(self):
        dec = SequenceDecoder(self._stream(PictureType.P))
        with pytest.raises(DecodeError, match="forward reference"):
            dec.decode_all()

    def test_b_without_backward_reference_raises(self):
        from repro.mpeg2.frame import Frame

        data = self._stream(PictureType.B)
        dec = SequenceDecoder(data)
        pic = dec.index.gops[0].pictures[0]
        with pytest.raises(DecodeError, match="backward reference"):
            dec.decode_picture(pic, fwd=Frame.blank(64, 48), bwd=None)

    def test_open_gop_rejected_by_gop_decoder(self):
        open_gop = _segment(GROUP_START_CODE, GopHeader(closed_gop=False))
        data = assemble(SEQ, open_gop, PIC, (0x01, b"\x20"))
        dec = SequenceDecoder(data)
        with pytest.raises(DecodeError, match="closed"):
            dec.decode_gop(dec.index.gops[0])


class TestAllIntraStream:
    """GOP size 1: the all-I 'editing-friendly' stream shape."""

    def test_encode_decode(self):
        from repro.mpeg2.decoder import decode_sequence
        from repro.video.metrics import sequence_psnr

        frames = SyntheticVideo(48, 32, seed=9).frames(6)
        data = encode_sequence(frames, EncoderConfig(gop_size=1, qscale_code=3))
        idx = build_index(data)
        assert len(idx.gops) == 6
        assert all(
            p.picture_type is PictureType.I
            for g in idx.gops
            for p in g.pictures
        )
        decoded = decode_sequence(data)
        assert sequence_psnr(frames, decoded) > 30.0

    def test_gop_parallelism_on_all_intra(self):
        from repro.parallel import GopLevelDecoder, ParallelConfig, profile_stream
        from repro.smp import challenge

        frames = SyntheticVideo(48, 32, seed=9).frames(12)
        data = encode_sequence(frames, EncoderConfig(gop_size=1, qscale_code=3))
        profile, _ = profile_stream(data)
        r1 = GopLevelDecoder(profile).run(
            ParallelConfig(workers=1, machine=challenge(4))
        )
        r3 = GopLevelDecoder(profile).run(
            ParallelConfig(workers=3, machine=challenge(5))
        )
        # One-picture GOPs give maximal task count: near-linear here.
        assert r3.pictures_per_second > 2.2 * r1.pictures_per_second