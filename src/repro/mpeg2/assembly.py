"""Stream assembly: start-code framing + emulation-safe payloads.

The encoder produces each syntactic unit (sequence header, GOP header,
picture header, slice) as an independent byte payload; the assembler
frames each with its start code and applies emulation prevention so
start codes remain unique sync points (see
:mod:`repro.bitstream.emulation`).  The decoder side extracts and
unescapes payloads from the framed stream.
"""

from __future__ import annotations

from repro.bitstream import (
    SEQUENCE_END_CODE,
    StartCodeHit,
    find_start_codes,
)
from repro.bitstream.emulation import escape_payload, unescape_payload


class StreamAssembler:
    """Accumulates framed segments into a byte stream."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []
        self._size = 0

    def add_segment(self, code: int, payload: bytes) -> int:
        """Frame ``payload`` with start code ``code``; returns wire size."""
        if not 0 <= code <= 0xFF:
            raise ValueError(f"start code value out of range: {code}")
        framed = b"\x00\x00\x01" + bytes([code]) + escape_payload(payload)
        self._parts.append(framed)
        self._size += len(framed)
        return len(framed)

    def add_sequence_end(self) -> None:
        self._parts.append(b"\x00\x00\x01" + bytes([SEQUENCE_END_CODE]))
        self._size += 4

    @property
    def size(self) -> int:
        return self._size

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


def segment_payload(data: bytes, hits: list[StartCodeHit], i: int) -> bytes:
    """Extract and unescape the payload of the ``i``-th start-code hit.

    The payload runs from just after the start code to the next start
    code (or end of stream).
    """
    start = hits[i].payload_offset
    end = hits[i + 1].offset if i + 1 < len(hits) else len(data)
    return unescape_payload(data[start:end])


def payload_range(data: bytes, hits: list[StartCodeHit], i: int) -> tuple[int, int]:
    """Wire byte range (escaped form) of the ``i``-th hit's payload."""
    start = hits[i].payload_offset
    end = hits[i + 1].offset if i + 1 < len(hits) else len(data)
    return start, end


__all__ = [
    "StreamAssembler",
    "segment_payload",
    "payload_range",
    "find_start_codes",
]
