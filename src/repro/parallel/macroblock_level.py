"""Macroblock-level parallelism: the decomposition the paper rejects.

Section 4: macroblocks and blocks "do not have startcodes to identify
them without actually doing the decoding itself ... it would be
necessary for one process to perform the decoding of the stream,
detect the boundaries of each macroblock (including its motion
vectors) ... and assign the macroblock or its blocks to other
processors.  While this approach may be viable, it places a large load
on one processor."

This module implements exactly that architecture so the claim can be
measured: a single *parser* process performs all bitstream decoding
(VLC, headers, boundary detection) serially, and worker processes
perform only the reconstruction half (inverse quantization + IDCT,
motion compensation, pixel writes) of each slice's macroblocks.
Amdahl's law then caps the speedup at
``total_work / parse_work`` — about 2x at the paper's 5 Mb/s
operating point — which is why the paper parallelizes at slice
granularity instead.
"""

from __future__ import annotations

from repro.mpeg2.counters import WorkCounters
from repro.parallel.gop_level import DecodeRunResult, ParallelConfig
from repro.parallel.pacing import DisplayPacer
from repro.parallel.profile import StreamProfile
from repro.parallel.queues import SimQueue
from repro.smp.costs import CostModel
from repro.smp.engine import Compute, Halt, Process, Simulator, SleepUntil, Stall
from repro.smp.memtrack import MemoryTracker


def measured_phase_split(data: bytes) -> dict[str, float]:
    """Wall-clock parse/reconstruct split of the batched decoder.

    The empirical counterpart of :func:`parse_cycles` /
    :func:`reconstruction_cycles`: decode ``data`` once through the
    two-phase fast path (:mod:`repro.mpeg2.batched`), timing phase 1
    (serial bit work) and phase 2 (vectorized reconstruction)
    separately.  The returned ``amdahl_bound`` is the measured speedup
    ceiling of the parser-process architecture this module simulates —
    the number the paper argues against at its Section 4 operating
    point.

    Returns ``{"parse_seconds", "reconstruct_seconds",
    "parse_fraction", "amdahl_bound", "pictures"}``.
    """
    from time import perf_counter

    from repro.mpeg2.batched import parse_slice, reconstruct_slices
    from repro.mpeg2.decoder import SequenceDecoder
    from repro.mpeg2.frame import Frame

    dec = SequenceDecoder(data)
    seq = dec.seq
    parse_t = 0.0
    recon_t = 0.0
    pictures = 0
    for gop in dec.index.gops:
        ref_old = ref_new = None
        for pic in gop.pictures:
            if pic.picture_type.is_reference:
                fwd, bwd = ref_new, None
            else:
                fwd, bwd = ref_old, ref_new
            header = pic.header()
            out = Frame.blank(seq.width, seq.height)
            out.temporal_reference = pic.temporal_reference
            mbw, mbh = out.mb_width, out.mb_height
            payloads = [
                (dec.slice_payload(sl), sl.vertical_position) for sl in pic.slices
            ]
            t0 = perf_counter()
            parses = [
                parse_slice(payload, vpos, header, mbw, mbh, fwd is not None)
                for payload, vpos in payloads
            ]
            t1 = perf_counter()
            reconstruct_slices(parses, seq, header, out, fwd, bwd)
            recon_t += perf_counter() - t1
            parse_t += t1 - t0
            pictures += 1
            if pic.picture_type.is_reference:
                ref_old, ref_new = ref_new, out
    total = parse_t + recon_t
    return {
        "parse_seconds": parse_t,
        "reconstruct_seconds": recon_t,
        "parse_fraction": parse_t / total if total else 0.0,
        "amdahl_bound": total / parse_t if parse_t else float("inf"),
        "pictures": float(pictures),
    }


def parse_cycles(cost: CostModel, counters: WorkCounters) -> int:
    """The bitstream-decoding share of a task's work.

    Everything that must walk the VLC stream serially: bit parsing and
    header processing.  This is the work pinned to the parser process.
    """
    return int(
        cost.cycles_per_bit * counters.bits
        + cost.cycles_per_header * counters.headers
    )


def reconstruction_cycles(cost: CostModel, counters: WorkCounters) -> int:
    """The parallelizable remainder: IDCT, MC, pixel reconstruction."""
    return cost.decode_cycles(counters) - parse_cycles(cost, counters)


class MacroblockLevelDecoder:
    """Simulate the parser + reconstruction-workers architecture.

    Tasks handed to workers are the reconstruction of one slice's
    macroblocks (batching individual macroblocks per slice keeps queue
    traffic comparable to the slice-level decoder; per-macroblock
    queueing would only be worse).

    Reference dependencies are not explicitly gated: the serial parser
    trails aggregate reconstruction for every P >= 2, so a picture's
    references are reconstructed long before its own tasks are parsed;
    gating would only lower the measured ceiling this ablation exists
    to demonstrate.
    """

    def __init__(self, profile: StreamProfile) -> None:
        self.profile = profile

    def amdahl_bound(self, cost: CostModel) -> float:
        """The architecture's speedup ceiling: total work / serial work."""
        total = cost.decode_cycles(self.profile.total_counters())
        serial = parse_cycles(cost, self.profile.total_counters())
        return total / serial if serial else float("inf")

    def run(self, config: ParallelConfig) -> DecodeRunResult:
        profile = self.profile
        sim = Simulator()
        cost = config.cost
        machine = config.machine
        memory = MemoryTracker()
        result = DecodeRunResult(
            config=config, picture_count=profile.picture_count, memory=memory
        )
        recon_queue = SimQueue("recon-tasks", cost.queue_op_cycles)
        display_queue = SimQueue("display", cost.queue_op_cycles)
        fbytes = profile.frame_bytes
        pixels = profile.picture_pixels

        # Per-picture counters: ``unstarted`` guards the one-time frame
        # allocation at first claim; ``remaining`` detects completion.
        # Both are updated atomically with respect to engine yields.
        unstarted: dict[int, int] = {}
        remaining: dict[int, int] = {}
        order = 0
        flat: list[tuple[int, object]] = []  # (global order, picture)
        for gop in profile.gops:
            for pic in gop.pictures:
                unstarted[order] = len(pic.slices)
                remaining[order] = len(pic.slices)
                flat.append((order, pic))
                order += 1

        # -- parser process: ALL bitstream decoding, serially ------------
        def parser_body(proc: Process):
            for order_, pic in flat:
                yield Compute(
                    int(cost.cycles_per_bit * pic.header_bits + cost.cycles_per_header)
                )
                for si, sp in enumerate(pic.slices):
                    busy = parse_cycles(cost, sp.counters)
                    yield Compute(busy)
                    yield Stall(
                        cost.stall_cycles(busy, machine, pixels, config.remote_fraction)
                    )
                    yield from recon_queue.put((order_, pic, si))
            yield from recon_queue.close()

        # -- reconstruction workers ---------------------------------------
        def worker_body(proc: Process):
            while True:
                task = yield from recon_queue.get()
                if task is None:
                    break
                order_, pic, si = task
                if unstarted[order_] == len(pic.slices):
                    memory.allocate(sim.now, fbytes, "frames")
                unstarted[order_] -= 1
                busy = reconstruction_cycles(cost, pic.slices[si].counters)
                yield Compute(busy)
                yield Stall(
                    cost.stall_cycles(busy, machine, pixels, config.remote_fraction)
                )
                remaining[order_] -= 1
                finished = remaining[order_] == 0
                if finished:
                    yield from display_queue.put(pic.display_index)

        # -- display process ------------------------------------------------
        pacer = DisplayPacer(
            machine, config.display_rate_hz, config.display_preroll_pictures
        )

        def display_body(proc: Process):
            import heapq

            pending: list[int] = []
            next_index = 0
            total = profile.picture_count
            while next_index < total:
                idx = yield from display_queue.get()
                assert idx is not None, "display queue closed early"
                heapq.heappush(pending, idx)
                while pending and pending[0] == next_index:
                    heapq.heappop(pending)
                    target = pacer.on_ready(next_index, sim.now)
                    if target is not None:
                        yield SleepUntil(target)
                    yield Compute(cost.display_cycles())
                    memory.free(sim.now, fbytes, "frames")
                    result.display_times.append(sim.now)
                    next_index += 1
            yield Halt()

        sim.add_process("parser", parser_body)
        workers = [
            sim.add_process(f"worker-{i}", worker_body)
            for i in range(config.workers)
        ]
        sim.add_process("display", display_body)
        sim.run()

        result.finish_cycles = result.display_times[-1]
        result.stalls = sim.stalls
        result.worker_busy = [w.stats.busy for w in workers]
        result.worker_stall = [w.stats.stall for w in workers]
        result.worker_sync = [w.stats.sync_wait for w in workers]
        result.late_pictures = pacer.late_pictures
        result.max_lateness_cycles = pacer.max_lateness
        return result
