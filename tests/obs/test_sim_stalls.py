"""Simulator-side stall attribution: same vocabulary as the real run.

The unification satellite: the discrete-event engine's blocking waits
(locks, conditions, barriers, queue gets, pool slots, merge reorder)
must land in the same canonical :mod:`repro.obs.stalls` reason
vocabulary — and the same ``StallTable``/``breakdown()`` arithmetic —
that the real multiprocessing pipeline reports, so the two appear side
by side in ``repro.analysis.obs_report``.
"""

from __future__ import annotations

from repro.obs.stalls import (
    CANONICAL_REASONS,
    REASON_BARRIER,
    REASON_LOCK,
    REASON_MERGE,
    REASON_POOL_SLOT,
    REASON_QUEUE_GET,
)
from repro.smp.engine import (
    AcquireLock,
    Compute,
    ReleaseLock,
    Simulator,
    WaitBarrier,
)
from repro.smp.sync import Barrier, Lock


class TestEngineAttribution:
    def test_contended_lock_recorded_under_lock_reason(self):
        sim = Simulator()
        lock = Lock("m")

        def holder(proc):
            yield AcquireLock(lock)
            yield Compute(100)
            yield ReleaseLock(lock)

        def contender(proc):
            yield AcquireLock(lock)
            yield ReleaseLock(lock)

        sim.add_process("holder", holder)
        waiter = sim.add_process("contender", contender)
        sim.run()

        assert waiter.stats.sync_wait == 100
        assert waiter.stats.sync_by_reason == {REASON_LOCK: 100}
        assert sim.stalls.total(REASON_LOCK) == 100
        assert sim.stalls.waiters() == ["contender"]

    def test_barrier_wait_recorded_under_barrier_reason(self):
        sim = Simulator()
        barrier = Barrier(2, "b")

        def early(proc):
            yield WaitBarrier(barrier)

        def late(proc):
            yield Compute(250)
            yield WaitBarrier(barrier)

        first = sim.add_process("early", early)
        sim.add_process("late", late)
        sim.run()

        assert first.stats.sync_by_reason == {REASON_BARRIER: 250}
        assert sim.stalls.total(REASON_BARRIER) == 250

    def test_sync_by_reason_sums_to_sync_wait(self):
        sim = Simulator()
        lock = Lock("m")
        barrier = Barrier(2, "b")

        def a(proc):
            yield AcquireLock(lock)
            yield Compute(60)
            yield ReleaseLock(lock)
            yield WaitBarrier(barrier)

        def b(proc):
            yield AcquireLock(lock)  # waits 60 on the lock
            yield ReleaseLock(lock)
            yield Compute(40)
            yield WaitBarrier(barrier)

        sim.add_process("a", a)
        pb = sim.add_process("b", b)
        sim.run()

        for proc in sim.processes:
            assert sum(proc.stats.sync_by_reason.values()) == (
                proc.stats.sync_wait
            )
        assert pb.stats.sync_by_reason[REASON_LOCK] == 60


class TestDecoderBreakdowns:
    def _profile(self, stream):
        from repro.parallel.profile import profile_stream

        profile, _ = profile_stream(stream)
        return profile

    def test_gop_decoder_stalls_use_canonical_reasons(self, medium_stream):
        from repro.parallel.gop_level import GopLevelDecoder, ParallelConfig

        result = GopLevelDecoder(self._profile(medium_stream)).run(
            ParallelConfig(workers=4)
        )
        breakdown = result.stall_breakdown()
        assert set(breakdown) <= set(CANONICAL_REASONS)
        assert sum(breakdown.values()) <= 1.0 + 1e-12
        # Workers outnumber GOPs: someone waited on the task queue, and
        # out-of-order completions held in the display reorder buffer.
        assert result.stalls.total(REASON_QUEUE_GET) > 0

    def test_bounded_pool_reports_pool_slot_stalls(self, medium_stream):
        from repro.parallel.gop_level import GopLevelDecoder, ParallelConfig

        result = GopLevelDecoder(self._profile(medium_stream)).run(
            ParallelConfig(workers=2, max_frames_in_flight=2)
        )
        assert result.stalls.total(REASON_POOL_SLOT) > 0
        assert REASON_POOL_SLOT in result.stall_breakdown()

    def test_merge_stall_vocabulary_matches_mp_pipeline(self, medium_stream):
        """Both worlds file reorder holds under REASON_MERGE."""
        from repro.parallel.gop_level import GopLevelDecoder, ParallelConfig
        from repro.parallel.mp import MPGopDecoder

        sim = GopLevelDecoder(self._profile(medium_stream)).run(
            ParallelConfig(workers=4)
        )
        sim_reasons = set(sim.stall_breakdown())

        mp_decoder = MPGopDecoder(medium_stream, workers=2)
        mp_decoder.decode_all()
        mp_reasons = set(mp_decoder.stall_breakdown())

        # Whatever overlaps must be the shared canonical names; the
        # parent-side queue wait exists in both worlds by construction.
        assert sim_reasons <= set(CANONICAL_REASONS)
        assert mp_reasons <= set(CANONICAL_REASONS)
        assert REASON_QUEUE_GET in sim_reasons
        assert REASON_QUEUE_GET in mp_reasons
        assert REASON_MERGE in sim_reasons

    def test_slice_decoder_populates_stall_table(self, medium_stream):
        from repro.parallel.gop_level import ParallelConfig
        from repro.parallel.slice_level import SliceLevelDecoder, SliceMode

        result = SliceLevelDecoder(self._profile(medium_stream)).run(
            ParallelConfig(workers=4), SliceMode.SIMPLE
        )
        breakdown = result.stall_breakdown()
        assert set(breakdown) <= set(CANONICAL_REASONS)
        assert sum(breakdown.values()) <= 1.0 + 1e-12
