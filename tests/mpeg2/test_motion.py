"""Motion estimation / compensation invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpeg2.motion import (
    MotionVector,
    average_predictions,
    full_search,
    intra_activity,
    predict_block,
)


def _plane(h=64, w=64, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size=(h, w)).astype(np.uint8)


class TestMotionVector:
    def test_chroma_halving_truncates_toward_zero(self):
        assert MotionVector(3, -3).chroma() == MotionVector(1, -1)
        assert MotionVector(5, -5).chroma() == MotionVector(2, -2)
        assert MotionVector(0, 0).chroma() == MotionVector(0, 0)

    def test_addition(self):
        assert MotionVector(1, 2) + MotionVector(3, -1) == MotionVector(4, 1)


class TestPredictBlock:
    def test_zero_mv_is_copy(self):
        ref = _plane()
        out = predict_block(ref, 16, 16, 16, 16, MotionVector.ZERO)
        assert np.array_equal(out, ref[16:32, 16:32].astype(np.int32))

    def test_full_pel_displacement(self):
        ref = _plane()
        out = predict_block(ref, 16, 16, 8, 8, MotionVector(dy=4, dx=-6))
        assert np.array_equal(out, ref[18:26, 13:21].astype(np.int32))

    def test_half_pel_horizontal_average(self):
        ref = np.zeros((16, 16), dtype=np.uint8)
        ref[0, 0], ref[0, 1] = 10, 13
        out = predict_block(ref, 0, 0, 1, 1, MotionVector(dy=0, dx=1))
        assert out[0, 0] == 12  # (10 + 13 + 1) >> 1

    def test_half_pel_both_axes_rounds(self):
        ref = np.zeros((4, 4), dtype=np.uint8)
        ref[0:2, 0:2] = [[1, 2], [3, 4]]
        out = predict_block(ref, 0, 0, 1, 1, MotionVector(dy=1, dx=1))
        assert out[0, 0] == (1 + 2 + 3 + 4 + 2) >> 2

    def test_negative_half_pel_decomposition(self):
        ref = _plane()
        # -1 half-pel == floor to -1 full-pel with +0.5 fraction
        a = predict_block(ref, 8, 8, 4, 4, MotionVector(dy=-1, dx=0))
        manual = (
            ref[7:11, 8:12].astype(np.int32) + ref[8:12, 8:12].astype(np.int32) + 1
        ) >> 1
        assert np.array_equal(a, manual)

    def test_out_of_bounds_rejected(self):
        ref = _plane(32, 32)
        with pytest.raises(ValueError):
            predict_block(ref, 0, 0, 16, 16, MotionVector(dy=-2, dx=0))
        with pytest.raises(ValueError):
            predict_block(ref, 16, 16, 16, 16, MotionVector(dy=1, dx=0))

    def test_average_predictions_rounds_up(self):
        a = np.array([[1]], dtype=np.int32)
        b = np.array([[2]], dtype=np.int32)
        assert average_predictions(a, b)[0, 0] == 2


class TestFullSearch:
    def test_finds_exact_translation(self):
        ref = _plane(64, 64, seed=1)
        # Current block is the reference shifted by (+3, -2) full pels.
        cur = ref[19:35, 14:30]
        est = full_search(cur, ref, 16, 16, search_range=5)
        assert est.mv == MotionVector(dy=6, dx=-4)  # half-pel units
        assert est.sad == 0

    def test_finds_half_pel_translation(self):
        ref = _plane(64, 64, seed=2)
        cur = ((ref[16:32, 20:37].astype(np.int32)[:, :-1]
                + ref[16:32, 20:37].astype(np.int32)[:, 1:] + 1) >> 1)
        est = full_search(cur.astype(np.uint8), ref, 16, 16, search_range=6)
        assert est.mv == MotionVector(dy=0, dx=9)  # 4 full + 1 half

    def test_prefers_zero_vector_on_ties(self):
        ref = np.full((64, 64), 77, dtype=np.uint8)
        cur = np.full((16, 16), 77, dtype=np.uint8)
        est = full_search(cur, ref, 24, 24, search_range=7)
        assert est.mv == MotionVector.ZERO
        assert est.sad == 0

    def test_clamps_to_plane_at_corner(self):
        ref = _plane(32, 32, seed=3)
        cur = ref[0:16, 0:16]
        est = full_search(cur, ref, 0, 0, search_range=7)
        assert est.mv == MotionVector.ZERO

    @given(st.integers(-4, 4), st.integers(-4, 4))
    @settings(max_examples=20, deadline=None)
    def test_recovers_any_integer_shift(self, dy, dx):
        ref = _plane(80, 80, seed=4)
        y0, x0 = 32, 32
        cur = ref[y0 + dy : y0 + dy + 16, x0 + dx : x0 + dx + 16]
        est = full_search(cur, ref, y0, x0, search_range=6)
        assert est.sad == 0
        # Any zero-SAD vector is acceptable (textures can repeat), but
        # the true shift must be matched in prediction terms.
        pred = predict_block(ref, y0, x0, 16, 16, est.mv)
        assert np.array_equal(pred, cur.astype(np.int32))


class TestIntraActivity:
    def test_flat_block_zero(self):
        assert intra_activity(np.full((16, 16), 99, dtype=np.uint8)) == 0

    def test_textured_block_positive(self):
        assert intra_activity(_plane(16, 16)) > 0
