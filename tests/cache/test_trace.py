"""Trace generation: layout, recorder, and decoder-driven traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    AccessRecorder,
    AddressSpaceLayout,
    CacheConfig,
    generate_decode_trace,
    simulate,
)
from repro.cache.cachesim import line_size_sweep
from repro.cache.trace import WORD


class TestLayout:
    def make(self, procs=2):
        return AddressSpaceLayout(
            coded_width=64, coded_height=48, stream_bytes=1000, processors=procs
        )

    def test_regions_disjoint(self):
        lay = self.make()
        spans = [(lay.stream_base, lay.stream_base + 1000),
                 (lay.tables_base, lay.tables_base + 8192)]
        for base in lay.coeff_bases:
            spans.append((base, base + 1024))
        for b in range(lay.frame_buffers):
            for plane in ("y", "cb", "cr"):
                r = lay.plane(b, plane)
                spans.append((r.base, r.base + r.stride * r.height))
        spans.sort()
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2, "overlapping regions"
        assert spans[-1][1] <= lay.total_bytes

    def test_rect_words_row_major(self):
        lay = self.make()
        addrs = lay.rect_words(0, "y", 2, 4, 2, 8)
        r = lay.plane(0, "y")
        row0 = r.base + 2 * 64 + np.arange(4, 12, WORD)
        row1 = r.base + 3 * 64 + np.arange(4, 12, WORD)
        assert np.array_equal(addrs, np.concatenate([row0, row1]))

    def test_rect_words_unaligned_x_covers_block(self):
        lay = self.make()
        addrs = lay.rect_words(0, "y", 0, 3, 1, 17)  # bytes 3..19
        # Words 0, 4, 8, 12, 16 cover the span.
        r = lay.plane(0, "y")
        assert addrs[0] == r.base + 0
        assert addrs[-1] == r.base + 16

    def test_stream_words_sequential(self):
        lay = self.make()
        addrs = lay.stream_words(10, 20)  # bytes 10..29
        assert addrs[0] == 8
        assert addrs[-1] == 28
        assert np.all(np.diff(addrs) == WORD)

    def test_coeff_words_private_per_processor(self):
        lay = self.make(procs=2)
        a0, w0 = lay.coeff_words(0, 2)
        a1, _ = lay.coeff_words(1, 2)
        assert set(a0).isdisjoint(set(a1))
        # write pass then read pass per block
        assert w0[:32].all() and not w0[32:64].any()


class TestRecorder:
    def test_stream_offset_advances(self):
        rec = AccessRecorder(stream_offset=100)
        rec.stream_read(50)
        rec.stream_read(30)
        assert rec.events == [("stream", 100, 50), ("stream", 150, 30)]

    def test_zero_table_lookups_dropped(self):
        rec = AccessRecorder()
        rec.table_lookups(0)
        assert rec.events == []


@pytest.fixture(scope="module")
def traces(small_stream):
    return {
        1: generate_decode_trace(small_stream, processors=1),
        3: generate_decode_trace(small_stream, processors=3),
    }


class TestGeneratedTraces:
    def test_all_processors_present(self, traces):
        t = traces[3]
        assert set(np.unique(t.proc)) == {0, 1, 2}

    def test_single_processor_trace(self, traces):
        t = traces[1]
        assert set(np.unique(t.proc)) == {0}

    def test_same_total_work_regardless_of_processors(self, traces):
        # References differ only in the private coeff-buffer addresses
        # and interleaving, not in volume.
        assert len(traces[1]) == len(traces[3])
        assert traces[1].write_count == traces[3].write_count

    def test_reads_dominate(self, traces):
        # MC reads + stream + tables + coeff re-reads outnumber writes.
        t = traces[1]
        assert t.read_count > t.write_count

    def test_addresses_inside_layout(self, traces):
        t = traces[3]
        assert int(t.addr.min()) >= 0
        assert int(t.addr.max()) < t.layout.total_bytes

    def test_max_pictures_truncates(self, small_stream):
        t_all = generate_decode_trace(small_stream, processors=1)
        t_3 = generate_decode_trace(small_stream, processors=1, max_pictures=3)
        assert 0 < len(t_3) < len(t_all)

    def test_deterministic(self, small_stream):
        a = generate_decode_trace(small_stream, processors=2)
        b = generate_decode_trace(small_stream, processors=2)
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.proc, b.proc)

    def test_assignment_policies(self, small_stream):
        static = generate_decode_trace(
            small_stream, processors=3, assignment="static"
        )
        rotating = generate_decode_trace(
            small_stream, processors=3, assignment="rotating"
        )
        # Same work volume; processor labels (and with them the
        # private coefficient-buffer addresses) differ.
        assert len(static) == len(rotating)
        assert static.write_count == rotating.write_count
        assert not np.array_equal(static.proc, rotating.proc)

    def test_unknown_assignment_rejected(self, small_stream):
        with pytest.raises(ValueError):
            generate_decode_trace(small_stream, assignment="bogus")

    def test_rotating_assignment_raises_miss_rate(self, small_stream):
        """Section 7.2's locality concern, at test scale: destroying
        producer-consumer slice affinity multiplies misses."""
        cfg = CacheConfig(line_size=64, capacity=1 << 20, associativity=0)
        static = generate_decode_trace(small_stream, processors=3)
        rotating = generate_decode_trace(
            small_stream, processors=3, assignment="rotating"
        )
        m_static, _ = simulate(static, cfg)
        m_rotating, _ = simulate(rotating, cfg)
        assert m_rotating.read_miss_rate > 1.3 * m_static.read_miss_rate


class TestLocalityProperties:
    """The paper's Section 5.3 results, at test scale."""

    def test_spatial_locality_line_size_halving(self, traces):
        """Fig. 13: read miss rate ~halves per line-size doubling."""
        sweep = line_size_sweep(traces[1], [16, 32, 64, 128])
        rates = list(sweep.values())
        for big, small in zip(rates, rates[1:]):
            assert small < big * 0.75, f"doubling the line only got {big}->{small}"

    def test_working_set_fits_small_cache(self, traces):
        """Fig. 14: with associativity, modest caches capture the
        working set; the miss rate is then cold-dominated (Fig. 15)."""
        big, _ = simulate(
            traces[1], CacheConfig(line_size=64, capacity=1 << 20, associativity=0)
        )
        small, _ = simulate(
            traces[1], CacheConfig(line_size=64, capacity=64 << 10, associativity=0)
        )
        assert small.read_miss_rate < 4 * big.read_miss_rate
        assert big.capacity_to_cold_ratio < 1.0

    def test_parallel_trace_has_small_sharing_misses(self, traces):
        """Paper: 'true sharing misses are small, false sharing
        negligible' — coherence misses are a small fraction."""
        total, _ = simulate(
            traces[3], CacheConfig(line_size=64, capacity=1 << 20, associativity=0)
        )
        assert total.coherence_misses < 0.15 * total.misses
