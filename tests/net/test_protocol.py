"""Wire protocol units: framing, band serialisation, error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpeg2.frame import Frame
from repro.net.protocol import (
    MSG_HELLO,
    MSG_PIC_DONE,
    MSG_SLICE,
    MSG_STATS,
    ProtocolError,
    StreamFramer,
    band_bytes,
    band_into,
    decode_body,
    encode_message,
)


class TestFraming:
    def test_roundtrip_single_message(self):
        wire = encode_message(MSG_SLICE, 7, {"pic": 3, "row": 1}, b"\x01\x02")
        msgs = StreamFramer().feed(wire)
        assert len(msgs) == 1
        m = msgs[0]
        assert (m.type, m.seq, m.header, m.payload) == (
            MSG_SLICE, 7, {"pic": 3, "row": 1}, b"\x01\x02"
        )
        assert m.droppable and m.type_name == "slice"

    def test_byte_at_a_time_reassembly(self):
        wire = encode_message(MSG_PIC_DONE, 0, {"pic": 0, "bands": 3}) + \
            encode_message(MSG_STATS, 1, {"pic": 0}, b"x" * 100)
        framer = StreamFramer()
        got = []
        for i in range(len(wire)):
            got.extend(framer.feed(wire[i : i + 1]))
        assert [m.type for m in got] == [MSG_PIC_DONE, MSG_STATS]
        assert framer.pending_bytes == 0

    def test_empty_header_and_payload(self):
        m = StreamFramer().feed(encode_message(MSG_HELLO, 0, {}))[0]
        assert m.header == {} and m.payload == b""

    def test_control_messages_are_not_droppable(self):
        m = decode_body(encode_message(MSG_PIC_DONE, 2, {"pic": 0})[4:])
        assert not m.droppable

    def test_rejects_unknown_type(self):
        with pytest.raises(ProtocolError):
            encode_message(99, 0, {})
        wire = bytearray(encode_message(MSG_SLICE, 0, {}))
        wire[4] = 99  # type byte lives right after the length prefix
        with pytest.raises(ProtocolError):
            StreamFramer().feed(bytes(wire))

    def test_rejects_negative_seq_and_truncated_body(self):
        with pytest.raises(ProtocolError):
            encode_message(MSG_SLICE, -1, {})
        with pytest.raises(ProtocolError):
            decode_body(b"\x04")

    def test_rejects_oversized_frame_length(self):
        framer = StreamFramer()
        with pytest.raises(ProtocolError):
            framer.feed((17 << 20).to_bytes(4, "big") + b"\x00" * 8)

    def test_rejects_corrupt_json_header(self):
        wire = bytearray(encode_message(MSG_SLICE, 0, {"a": 1}))
        wire[-3] = 0xFF  # stomp inside the JSON header
        with pytest.raises(ProtocolError):
            StreamFramer().feed(bytes(wire))


class TestBandSerialisation:
    def test_roundtrip_preserves_planes(self):
        rng = np.random.default_rng(3)
        src = Frame.blank(48, 32)
        src.y[:] = rng.integers(0, 256, src.y.shape, dtype=np.uint8)
        src.cb[:] = rng.integers(0, 256, src.cb.shape, dtype=np.uint8)
        src.cr[:] = rng.integers(0, 256, src.cr.shape, dtype=np.uint8)
        dst = Frame.blank(48, 32)
        for row in range(src.mb_height):
            band_into(dst, row, band_bytes(src, row))
        assert src.same_pixels(dst)
        assert dst.digest() == src.digest()

    def test_band_length_is_row_exact(self):
        f = Frame.blank(64, 48)
        # 16 luma rows of 64 + 2 chroma bands of 8 rows of 32.
        assert len(band_bytes(f, 0)) == 16 * 64 + 2 * 8 * 32

    def test_band_into_rejects_wrong_size(self):
        f = Frame.blank(48, 32)
        with pytest.raises(ProtocolError):
            band_into(f, 0, b"\x00" * 10)
