"""Decoded-picture storage: 4:2:0 YCbCr frames padded to macroblocks.

A coded picture covers an integer number of 16x16 macroblocks; display
dimensions may be smaller (e.g. the paper's 176x120 streams are coded
as 176x128 with 8 macroblock rows).  Planes are stored at coded size;
:meth:`Frame.display_view` crops to the display rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mpeg2.constants import MACROBLOCK_SIZE, mb_ceil


@dataclass
class Frame:
    """One 4:2:0 picture: full-resolution Y, quarter-resolution Cb/Cr.

    Attributes
    ----------
    y, cb, cr:
        ``uint8`` planes at *coded* size (multiples of 16 / 8).
    display_width, display_height:
        The visible rectangle (<= coded size).
    """

    y: np.ndarray
    cb: np.ndarray
    cr: np.ndarray
    display_width: int
    display_height: int
    temporal_reference: int = field(default=0, compare=False)

    @classmethod
    def blank(cls, width: int, height: int) -> "Frame":
        """A zeroed frame for a ``width`` x ``height`` display size."""
        mbw, mbh = mb_ceil(width), mb_ceil(height)
        cw, ch = mbw * MACROBLOCK_SIZE, mbh * MACROBLOCK_SIZE
        return cls(
            y=np.zeros((ch, cw), dtype=np.uint8),
            cb=np.zeros((ch // 2, cw // 2), dtype=np.uint8),
            cr=np.zeros((ch // 2, cw // 2), dtype=np.uint8),
            display_width=width,
            display_height=height,
        )

    @classmethod
    def from_planes(
        cls, y: np.ndarray, cb: np.ndarray, cr: np.ndarray
    ) -> "Frame":
        """Build a frame from display-size planes, padding to coded size.

        Padding replicates the edge rows/columns, which keeps motion
        estimation near the border well behaved (no artificial black
        band creating spurious residual energy).
        """
        h, w = y.shape
        if cb.shape != (h // 2, w // 2) or cr.shape != (h // 2, w // 2):
            raise ValueError(
                f"chroma shape {cb.shape} does not match 4:2:0 for luma {y.shape}"
            )
        frame = cls.blank(w, h)
        ch, cw = frame.y.shape
        frame.y[:, :] = _edge_pad(y, ch, cw)
        frame.cb[:, :] = _edge_pad(cb, ch // 2, cw // 2)
        frame.cr[:, :] = _edge_pad(cr, ch // 2, cw // 2)
        return frame

    # ------------------------------------------------------------------
    @property
    def coded_width(self) -> int:
        return self.y.shape[1]

    @property
    def coded_height(self) -> int:
        return self.y.shape[0]

    @property
    def mb_width(self) -> int:
        """Macroblocks per row."""
        return self.coded_width // MACROBLOCK_SIZE

    @property
    def mb_height(self) -> int:
        """Macroblock rows (== slices per picture in the paper's streams)."""
        return self.coded_height // MACROBLOCK_SIZE

    @property
    def nbytes(self) -> int:
        """Stored size in bytes (what the paper's memory model counts)."""
        return self.y.nbytes + self.cb.nbytes + self.cr.nbytes

    def display_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Crop planes to the display rectangle (views, no copies)."""
        w, h = self.display_width, self.display_height
        return (
            self.y[:h, :w],
            self.cb[: (h + 1) // 2, : (w + 1) // 2],
            self.cr[: (h + 1) // 2, : (w + 1) // 2],
        )

    def copy(self) -> "Frame":
        return Frame(
            y=self.y.copy(),
            cb=self.cb.copy(),
            cr=self.cr.copy(),
            display_width=self.display_width,
            display_height=self.display_height,
            temporal_reference=self.temporal_reference,
        )

    def digest(self) -> str:
        """SHA-256 hex digest of the display rectangle (all three planes).

        The golden-vector conformance suite pins these digests per
        frame; any silent drift in bitstream syntax, VLC tables,
        quantization, IDCT rounding or motion compensation changes the
        digest.  Only display pixels are hashed (padding bytes are an
        implementation detail), and plane dimensions are mixed in so a
        transposed or cropped plane cannot collide.
        """
        import hashlib

        h = hashlib.sha256()
        for plane in self.display_view():
            h.update(f"{plane.shape[0]}x{plane.shape[1]}:".encode())
            h.update(np.ascontiguousarray(plane).tobytes())
        return h.hexdigest()

    def same_pixels(self, other: "Frame") -> bool:
        """Bit-exact equality of the display rectangles."""
        mine = self.display_view()
        theirs = other.display_view()
        return all(np.array_equal(a, b) for a, b in zip(mine, theirs))


def _edge_pad(plane: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Pad ``plane`` to ``(out_h, out_w)`` by replicating its edges."""
    h, w = plane.shape
    if (h, w) == (out_h, out_w):
        return plane
    return np.pad(plane, ((0, out_h - h), (0, out_w - w)), mode="edge")


def frame_bytes(width: int, height: int) -> int:
    """Bytes of one coded 4:2:0 frame for a display size.

    This is the ``frames(x)`` unit of the paper's analytical memory
    model (Fig. 9): 1.5 bytes per coded pixel.
    """
    cw = mb_ceil(width) * MACROBLOCK_SIZE
    ch = mb_ceil(height) * MACROBLOCK_SIZE
    return cw * ch * 3 // 2
