"""Analytical memory model (Fig. 9) vs the simulator's measured usage."""

from __future__ import annotations

import pytest

from repro.parallel import GopLevelDecoder, MemoryModel, ParallelConfig, profile_stream
from repro.smp import CHALLENGE, challenge
from repro.smp.machine import MachineConfig


@pytest.fixture(scope="module")
def profile(medium_stream):
    p, _ = profile_stream(medium_stream)
    return p


class TestModelVsSimulation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_peak_within_tolerance_of_measured(self, profile, workers):
        """The paper validates its model against measured behaviour;
        we require the predicted peak within 40% of the simulator's."""
        model = MemoryModel.from_profile(profile, workers)
        result = GopLevelDecoder(profile).run(
            ParallelConfig(workers=workers, machine=challenge(workers + 2))
        )
        measured = result.memory.peak()
        predicted = model.peak_bytes()
        assert predicted == pytest.approx(measured, rel=0.40)

    def test_finish_time_close_to_simulation(self, profile):
        model = MemoryModel.from_profile(profile, 2)
        result = GopLevelDecoder(profile).run(
            ParallelConfig(workers=2, machine=challenge(4))
        )
        assert model.finish_cycles() == pytest.approx(
            result.finish_cycles, rel=0.25
        )


class TestModelShape:
    def test_memory_is_scan_plus_frames(self, profile):
        model = MemoryModel.from_profile(profile, 2)
        for t in (0.0, model.finish_cycles() / 2, model.finish_cycles()):
            assert model.memory_bytes(t) == pytest.approx(
                model.scan_bytes(t) + model.frames_bytes(t)
            )

    def test_zero_at_start_and_end(self, profile):
        model = MemoryModel.from_profile(profile, 2)
        assert model.memory_bytes(0.0) == pytest.approx(0.0, abs=1e4)
        assert model.frames_bytes(model.finish_cycles() + 1) == pytest.approx(0.0)
        assert model.scan_bytes(model.finish_cycles() + 1) == pytest.approx(0.0)

    def test_peak_grows_with_workers(self, profile):
        """Fig. 8/9: memory grows (roughly linearly) with P."""
        peaks = [
            MemoryModel.from_profile(profile, p).peak_bytes() for p in (1, 2)
        ]
        assert peaks[1] > peaks[0]

    def test_curve_is_sampled_over_run(self, profile):
        model = MemoryModel.from_profile(profile, 2)
        curve = model.curve(points=50)
        assert len(curve) == 50
        assert curve[0][0] == 0.0
        assert curve[-1][0] == pytest.approx(model.finish_cycles())
        assert max(m for _, m in curve) <= model.peak_bytes() * 1.01


class TestFeasibility:
    def test_paper_infeasible_case(self):
        """Fig. 9's third case: 1408x960, 31 pictures/GOP, 11 workers
        exceeds the Challenge's 500 MB programme memory."""
        from repro.mpeg2.frame import frame_bytes

        model = MemoryModel(
            gop_count=36,          # 1120 pictures / 31
            gop_size=31,
            gop_bytes=45e6 / 36,   # Table 2: 45 MB file
            frame_bytes=frame_bytes(1408, 960),
            workers=11,
            scan_bytes_per_cycle=1 / 33.0,
            picture_cycles=287e6 * 1.2,  # Table 3 + stalls
        )
        assert not model.fits(CHALLENGE)
        # Back-of-envelope: ~P x GOP x frame ~ 690 MB.
        assert model.steady_state_frames() > 500 * 1024 * 1024

    def test_moderate_case_fits(self):
        from repro.mpeg2.frame import frame_bytes

        model = MemoryModel(
            gop_count=86,
            gop_size=13,
            gop_bytes=25e6 / 86,
            frame_bytes=frame_bytes(352, 240),
            workers=11,
            scan_bytes_per_cycle=1 / 33.0,
            picture_cycles=30e6 * 1.2,
        )
        assert model.fits(CHALLENGE)

    def test_memory_grows_with_resolution_and_gop_size(self):
        from repro.mpeg2.frame import frame_bytes

        def peak(w, h, gop_size):
            return MemoryModel(
                gop_count=12,
                gop_size=gop_size,
                gop_bytes=300_000,
                frame_bytes=frame_bytes(w, h),
                workers=6,
                scan_bytes_per_cycle=1 / 33.0,
                picture_cycles=30e6,
            ).peak_bytes()

        assert peak(704, 480, 13) > peak(352, 240, 13)
        assert peak(352, 240, 31) >= peak(352, 240, 13) * 0.9
