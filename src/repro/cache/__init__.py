"""Trace-driven cache simulation: the paper's locality study substrate.

The paper drove a memory-system simulator with TangoLite-generated
reference traces to characterise the decoder's spatial and temporal
locality (Section 5.3, Figs. 13-15).  Here the instrumented decoder
itself emits its logical accesses (bitstream reads, coefficient-buffer
traffic, motion-compensation reference reads, reconstruction writes);
:mod:`~repro.cache.trace` lays them out in a simulated address space
and :mod:`~repro.cache.cachesim` replays them through set-associative
caches with invalidation-based coherence and miss classification
(cold / coherence / capacity+conflict).
"""

from repro.cache.trace import (
    AccessRecorder,
    AddressSpaceLayout,
    MemoryTrace,
    generate_decode_trace,
)
from repro.cache.cachesim import CacheConfig, CacheStats, simulate

__all__ = [
    "AccessRecorder",
    "AddressSpaceLayout",
    "MemoryTrace",
    "generate_decode_trace",
    "CacheConfig",
    "CacheStats",
    "simulate",
]
