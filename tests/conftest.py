"""Shared fixtures: small encoded streams reused across test modules.

Encoding is the slow part of the suite, so streams are built once per
session at small sizes that still exercise every syntax element
(I/P/B pictures, skips, multiple slices and GOPs).

The second-slowest part is *re-decoding the committed golden vectors*:
several parity suites (scalar vs batched vs mp-gop vs mp-slice vs
serve) each used to decode the same 6 corpus streams per module.  The
session-scoped :class:`GoldenCache` (``golden`` fixture) decodes each
vector through the scalar oracle exactly once per test session and
hands out the shared frames/counters, so adding another parity
consumer no longer adds another full-corpus decode to the wall time.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.video.synthetic import SyntheticVideo

VECTOR_DIR = os.path.join(os.path.dirname(__file__), "vectors")
DIGEST_PATH = os.path.join(VECTOR_DIR, "digests.json")


class GoldenCache:
    """Lazy per-session cache of golden-vector bytes + scalar decodes.

    ``data(name)`` returns the committed coded bytes; ``scalar(name)``
    returns ``(frames, counters)`` from the sequential scalar oracle,
    decoded at most once per session.  Vectors a test run never asks
    for are never decoded (keeps ``pytest -k`` focused runs fast).
    Callers must treat the returned frames/counters as immutable —
    they are shared across every consumer suite.
    """

    def __init__(self) -> None:
        with open(DIGEST_PATH) as fh:
            doc = json.load(fh)
        self.corpus: dict[str, dict] = doc["streams"]
        self.negative: dict[str, dict] = doc["negative"]
        self.trickplay: dict[str, dict] = doc.get("trickplay", {})
        self._bytes: dict[str, bytes] = {}
        #: (vector, mode[, target]) -> decode products.  Keying on the
        #: *mode* matters: trick-play oracles are selections over the
        #: one linear decode, so asking for every mode of a vector
        #: still costs exactly one scalar decode per session.
        self._oracle: dict[tuple, tuple] = {}
        self._index: dict[str, object] = {}

    @property
    def names(self) -> list[str]:
        return sorted(self.corpus)

    def entry(self, name: str) -> dict:
        return self.corpus.get(name) or self.negative[name]

    def data(self, name: str) -> bytes:
        if name not in self._bytes:
            path = os.path.join(VECTOR_DIR, self.entry(name)["file"])
            with open(path, "rb") as fh:
                self._bytes[name] = fh.read()
        return self._bytes[name]

    def index(self, name: str):
        """Shared scan index for a committed vector."""
        if name not in self._index:
            from repro.mpeg2.index import build_index

            self._index[name] = build_index(self.data(name))
        return self._index[name]

    def scalar(self, name: str) -> tuple:
        """``(frames, counters)`` from one shared scalar-oracle decode."""
        key = (name, "linear")
        if key not in self._oracle:
            from repro.mpeg2.counters import WorkCounters
            from repro.mpeg2.decoder import SequenceDecoder

            counters = WorkCounters()
            frames = SequenceDecoder(
                self.data(name), engine="scalar"
            ).decode_all(counters)
            self._oracle[key] = (frames, counters)
        return self._oracle[key]

    def trick(self, name: str, mode: str, target: int = 0) -> list:
        """Expected ``(display_index, frame)`` pairs for a trick mode.

        Closed GOPs make every trick mode an exact *subset* of the
        linear decode, so the oracle is the planner's selection over
        the shared scalar frames — no second decode, and any decoder
        output compared against it is transitively compared against
        the pinned linear digests.
        """
        key = (name, mode, target)
        if key not in self._oracle:
            from repro.access import plan_trick

            frames, _ = self.scalar(name)
            plan = plan_trick(self.index(name), mode, target=target)
            dis = plan.display_indices(self.index(name))
            self._oracle[key] = [(d, frames[d]) for d in dis]
        return self._oracle[key]


@pytest.fixture(scope="session")
def golden() -> GoldenCache:
    """Session-scoped decoded-golden-vector cache (see GoldenCache)."""
    return GoldenCache()


@pytest.fixture(scope="session")
def small_video():
    """13 frames of 64x48 synthetic video (display order)."""
    return SyntheticVideo(width=64, height=48, seed=7).frames(13)


@pytest.fixture(scope="session")
def small_stream(small_video):
    """One closed 13-picture GOP at 64x48."""
    return encode_sequence(small_video, EncoderConfig(gop_size=13, qscale_code=3))


@pytest.fixture(scope="session")
def two_gop_video():
    """8 frames of 48x32 video: two 4-picture GOPs."""
    return SyntheticVideo(width=48, height=32, seed=11).frames(8)


@pytest.fixture(scope="session")
def two_gop_stream(two_gop_video):
    return encode_sequence(two_gop_video, EncoderConfig(gop_size=4, qscale_code=3))


@pytest.fixture(scope="session")
def medium_video():
    """26 frames of 96x64 video: two 13-picture GOPs (parallel tests)."""
    return SyntheticVideo(width=96, height=64, seed=3).frames(26)


@pytest.fixture(scope="session")
def medium_stream(medium_video):
    return encode_sequence(medium_video, EncoderConfig(gop_size=13, qscale_code=3))
