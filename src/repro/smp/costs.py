"""The cycle cost model: work counters -> simulated R4400 cycles.

Calibration
-----------
The model's constants are fitted to the paper's own measurements
(Table 3: maximum pictures/second of the GOP version with 14 workers),
which pin down the decode cost per picture on one 150 MHz R4400:

====================  ============  =====================
picture size          paper pics/s  cycles/picture/worker
====================  ============  =====================
352x240               69.9 / 14     ~30e6
704x480               26.6 / 14     ~79e6
1408x960               7.3 / 14     ~287e6
====================  ============  =====================

Because the 352x240 and 704x480 streams share one 5 Mb/s bit rate, the
system of equations separates bitstream-proportional work from
pixel-proportional work:

    bit_work(5 Mb/s / 30 fps = 167 kbit)  ~ 13.7e6 cycles -> 82 c/bit
    pixel_work(352x240)                   ~ 16.3e6 cycles

and predicts 1408x960 at 7 Mb/s as 19.2e6 + 16 * 16.3e6 = 280e6 —
within 3% of the measured 287e6, confirming the two-component shape.
The pixel side is then split across IDCT / motion compensation /
output writes in the proportions classic profiles of the reference
decoder show (roughly 50/25/25).

Memory stalls (the pixie-vs-prof gap of Fig. 7, 10-30% with ~20%
average) are modelled as a busy-time fraction that grows mildly with
picture size, plus — on NUMA machines — a remote-access component
whose weight grows with cluster count (directory hops), calibrated to
the DASH speedups quoted in Section 7.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mpeg2.counters import WorkCounters
from repro.smp.machine import MachineConfig


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle charges (see module docstring for fits)."""

    #: Bitstream parsing (VLC decode, buffer management) per wire bit.
    cycles_per_bit: float = 82.0
    #: Inverse quantization + IDCT of one coded 8x8 block.
    cycles_per_idct_block: float = 4100.0
    #: Half-pel prediction fetch, per fetched pixel.
    cycles_per_mc_pixel: float = 22.0
    #: Reconstruction write (add, clamp, store), per output pixel.
    cycles_per_pixel: float = 26.0
    #: Fixed macroblock overhead (addressing, mode dispatch).
    cycles_per_macroblock: float = 400.0
    #: Header parse (sequence/GOP/picture/slice).
    cycles_per_header: float = 4000.0

    #: Scan process: locating start codes + copying the stream into
    #: memory, per byte.  Fitted to Table 2 (25 MB scanned in
    #: 4.5-6.5 s at 150 MHz -> ~33 cycles/byte).
    scan_cycles_per_byte: float = 33.0
    #: Display process: reorder bookkeeping per picture (dithering is
    #: excluded, as in the paper's measurements).
    display_cycles_per_picture: float = 20_000.0
    #: Task queue operation (lock + pointer juggling).  The paper
    #: measures lock time as negligible; this keeps it small but real.
    queue_op_cycles: int = 250
    #: Slice-level decoders: per-(worker, picture) context setup —
    #: re-reading the picture header, quantiser state, buffer mapping.
    #: The paper singles this out as the improved version's overhead
    #: ("reading picture headers multiple times, etc.", Section 5.2.1).
    picture_attach_cycles: int = 60_000

    # -- memory-stall model (Fig. 7 calibration) -----------------------
    #: Base stall fraction of busy time at 352x240.
    stall_base: float = 0.15
    #: Extra stall fraction per doubling of pixel count above 352x240.
    stall_growth_per_doubling: float = 0.025
    #: NUMA: remote-traffic stall weight (Section 7.2 calibration).
    numa_remote_base: float = 0.20
    #: NUMA: growth of effective remote cost per extra cluster.
    numa_hop_growth: float = 0.35

    # ------------------------------------------------------------------
    def decode_cycles(self, counters: WorkCounters) -> int:
        """Ideal (pixie-style) cycles to perform the counted work."""
        c = counters
        total = (
            self.cycles_per_bit * c.bits
            + self.cycles_per_idct_block * c.idct_blocks
            + self.cycles_per_mc_pixel * c.mc_pixels
            + self.cycles_per_pixel * c.pixels
            + self.cycles_per_macroblock * c.macroblocks
            + self.cycles_per_header * c.headers
        )
        return int(total)

    def scan_cycles(self, nbytes: int) -> int:
        return int(self.scan_cycles_per_byte * nbytes)

    def display_cycles(self, pictures: int = 1) -> int:
        return int(self.display_cycles_per_picture * pictures)

    # ------------------------------------------------------------------
    def stall_fraction(
        self,
        machine: MachineConfig,
        picture_pixels: int,
        remote_fraction: float | None = None,
    ) -> float:
        """Memory-stall time as a fraction of busy time.

        ``picture_pixels`` is the luma pixel count of a picture (the
        knob Fig. 7 varies).  ``remote_fraction`` is the share of
        traffic served by remote NUMA memories; ``None`` means the
        naive no-placement default ``1 - 1/n_clusters``.
        """
        ref_pixels = 352 * 240
        doublings = max(0.0, math.log2(max(picture_pixels, 1) / ref_pixels))
        fraction = self.stall_base + self.stall_growth_per_doubling * doublings
        if machine.is_numa:
            clusters = max(machine.processors // machine.cluster_size, 1)
            if remote_fraction is None:
                remote_fraction = 1.0 - 1.0 / clusters
            fraction += (
                remote_fraction
                * self.numa_remote_base
                * (1.0 + self.numa_hop_growth * (clusters - 1))
            )
        return fraction

    def stall_cycles(
        self,
        busy_cycles: int,
        machine: MachineConfig,
        picture_pixels: int,
        remote_fraction: float | None = None,
    ) -> int:
        return int(
            busy_cycles
            * self.stall_fraction(machine, picture_pixels, remote_fraction)
        )


DEFAULT_COST_MODEL = CostModel()
