"""Typed task graphs: the executor's unit of planning and accounting.

A :class:`TaskGraph` is the explicit form of what the schedulers used
to encode implicitly in control flow: *which* units of work exist
(typed :class:`TaskNode` records — ``parse`` / ``reconstruct`` /
``publish``), and *which edges* must publish before a node may run
(reference-dependency edges, the paper's synchronization constraint).

The graph is deliberately an accounting structure, not a runtime
scheduler: planners (:mod:`repro.exec.plan`) lower a scan index into a
graph, the executor dispatches work through the worker-pool backend,
and the graph's conservation law — ``planned == dispatched ==
completed + cancelled`` — is what the property suite
(``tests/exec/test_exec_properties.py``) holds every execution to.
Dependency safety is structural: :meth:`TaskGraph.dispatch` refuses a
node whose ref edges have not completed, so "never schedule before the
refs publish" is enforced by construction, not by convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The three task kinds of the paper's pipeline: ``parse`` (entropy
#: decode / headers), ``reconstruct`` (dequant + IDCT + motion comp),
#: ``publish`` (make a decoded reference picture visible to waiters).
TASK_KINDS = ("parse", "reconstruct", "publish")

PENDING = "pending"
DISPATCHED = "dispatched"
COMPLETED = "completed"
CANCELLED = "cancelled"


@dataclass(frozen=True)
class TaskNode:
    """One typed unit of work with explicit ref-dependency edges.

    ``tid`` is unique within its graph; ``deps`` names the tids whose
    completion (reference publication) gates this node.  ``stream`` /
    ``gop`` / ``order`` locate the work in the coded stream so planners
    and tests can reason about what a node decodes without carrying
    byte payloads around.
    """

    tid: str
    kind: str
    stream: int = 0
    gop: int = 0
    order: int = 0
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(
                f"unknown task kind {self.kind!r}; expected one of {TASK_KINDS}"
            )


class TaskGraph:
    """A DAG of :class:`TaskNode` with conservation accounting.

    Nodes move ``pending -> dispatched -> completed`` (or ``pending ->
    cancelled`` when an error abandons downstream work).  Every
    transition is checked:

    * :meth:`add` rejects duplicate tids, unknown deps (edges must
      point at already-added nodes, which also makes cycles
      unrepresentable), and self-edges;
    * :meth:`dispatch` rejects a node whose deps have not completed —
      the "never schedule before the refs publish" invariant;
    * :meth:`verify_conservation` checks ``planned == dispatched ==
      completed + cancelled`` once a run finishes.
    """

    def __init__(self) -> None:
        self.nodes: dict[str, TaskNode] = {}
        self.state: dict[str, str] = {}
        #: Monotone counters — never decremented, so the conservation
        #: law audits history, not just the final state.
        self.planned = 0
        self.dispatched = 0
        self.completed = 0
        self.cancelled = 0

    # ------------------------------------------------------------------
    def add(self, node: TaskNode) -> TaskNode:
        if node.tid in self.nodes:
            raise ValueError(f"duplicate task id {node.tid!r}")
        for dep in node.deps:
            if dep == node.tid:
                raise ValueError(f"task {node.tid!r} depends on itself")
            if dep not in self.nodes:
                raise ValueError(
                    f"task {node.tid!r} depends on unknown task {dep!r} "
                    "(edges must point at already-planned nodes)"
                )
        self.nodes[node.tid] = node
        self.state[node.tid] = PENDING
        self.planned += 1
        return node

    def ready(self) -> list[TaskNode]:
        """Pending nodes whose every dep has completed, in plan order."""
        return [
            node
            for tid, node in self.nodes.items()
            if self.state[tid] == PENDING
            and all(self.state[d] == COMPLETED for d in node.deps)
        ]

    def dispatch(self, tid: str) -> TaskNode:
        node = self.nodes[tid]
        if self.state[tid] != PENDING:
            raise ValueError(
                f"task {tid!r} dispatched twice (state {self.state[tid]!r})"
            )
        unpublished = [d for d in node.deps if self.state[d] != COMPLETED]
        if unpublished:
            raise ValueError(
                f"task {tid!r} scheduled before its ref edges published: "
                f"{unpublished}"
            )
        self.state[tid] = DISPATCHED
        self.dispatched += 1
        return node

    def complete(self, tid: str) -> None:
        if self.state[tid] != DISPATCHED:
            raise ValueError(
                f"task {tid!r} completed without dispatch "
                f"(state {self.state[tid]!r})"
            )
        self.state[tid] = COMPLETED
        self.completed += 1

    def cancel(self, tid: str) -> None:
        """Abandon a node (error paths): pending nodes only.

        A cancelled node counts toward conservation — work planned but
        deliberately not done is still accounted for, unlike work
        silently lost.
        """
        if self.state[tid] != PENDING:
            raise ValueError(
                f"task {tid!r} cancelled after dispatch "
                f"(state {self.state[tid]!r})"
            )
        self.state[tid] = CANCELLED
        self.cancelled += 1

    def cancel_pending(self) -> int:
        """Cancel every still-pending node; returns how many."""
        n = 0
        for tid, st in self.state.items():
            if st == PENDING:
                self.cancel(tid)
                n += 1
        return n

    # ------------------------------------------------------------------
    def run_all(self, on_node=None) -> int:
        """Drive the graph to completion in dependency order.

        Repeatedly dispatches every ready node (calling ``on_node`` if
        given) and completes it.  Returns the number of nodes run.
        Raises if the graph stalls with pending nodes whose deps can
        never publish (a planner bug).
        """
        ran = 0
        while True:
            batch = self.ready()
            if not batch:
                break
            for node in batch:
                self.dispatch(node.tid)
                if on_node is not None:
                    on_node(node)
                self.complete(node.tid)
                ran += 1
        stuck = [t for t, s in self.state.items() if s == PENDING]
        if stuck:
            raise RuntimeError(
                f"task graph stalled with unrunnable pending nodes: {stuck}"
            )
        return ran

    # ------------------------------------------------------------------
    def is_settled(self) -> bool:
        """True when no node is pending or in flight."""
        return all(s in (COMPLETED, CANCELLED) for s in self.state.values())

    def verify_conservation(self) -> None:
        """Assert ``planned == dispatched + cancelled`` and
        ``dispatched == completed`` once the run settled.

        Raises ``RuntimeError`` naming the leak otherwise — the
        executor calls this after every run, so a lost task is a loud
        failure, never a silent hang.
        """
        if self.planned != len(self.nodes):
            raise RuntimeError(
                f"planned counter drifted: {self.planned} != {len(self.nodes)}"
            )
        if self.planned != self.dispatched + self.cancelled:
            raise RuntimeError(
                "task conservation violated: "
                f"planned={self.planned} != dispatched={self.dispatched} "
                f"+ cancelled={self.cancelled}"
            )
        if self.dispatched != self.completed:
            raise RuntimeError(
                "task conservation violated: "
                f"dispatched={self.dispatched} != completed={self.completed}"
            )

    def counts(self) -> dict[str, int]:
        return {
            "planned": self.planned,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "cancelled": self.cancelled,
        }
