"""Edge-case property tests for the PR-1 bitstream fast paths.

Two pieces of :mod:`repro.bitstream` were rewritten for speed and
carry subtle boundary behaviour that the original round-trip tests
never probed directly:

* :class:`~repro.bitstream.reader.BitReader` caches a 32-byte *chunk*
  of the buffer as one int; reads that straddle a chunk boundary,
  oversized reads that bypass the cache, backwards seeks, and
  zero-padded tail peeks all cross the refill logic.
* :func:`~repro.bitstream.emulation.unescape_payload` was rewritten
  from a per-byte state machine to a ``find``-and-splice over
  ``00 00 03``; stuffing bytes at buffer edges, back-to-back stuffing,
  and all-stuffing payloads exercise the splice arithmetic.

Every test here compares against a brute-force reference model, so the
fast paths are pinned to the obviously-correct formulation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream.emulation import (
    contains_start_code_prefix,
    escape_payload,
    unescape_payload,
)
from repro.bitstream.reader import (
    _CACHE_BITS,
    _CACHE_BYTES,
    _MAX_CACHED_READ,
    BitReader,
    BitstreamError,
)

# ----------------------------------------------------------------------
# reference models
# ----------------------------------------------------------------------
def naive_read(data: bytes, pos: int, nbits: int) -> int:
    """Bit extraction straight off the whole buffer as one big int."""
    total = len(data) * 8
    big = int.from_bytes(data, "big") if data else 0
    return (big >> (total - pos - nbits)) & ((1 << nbits) - 1)


def naive_peek(data: bytes, pos: int, nbits: int) -> int:
    """Peek semantics: bits past the end read as zero."""
    total = len(data) * 8
    got = min(nbits, max(total - pos, 0))
    val = naive_read(data, pos, got) if got else 0
    return val << (nbits - got)


def naive_unescape(payload: bytes) -> bytes:
    """The original byte-at-a-time emulation-prevention state machine."""
    out = bytearray()
    zeros = 0
    for b in payload:
        if zeros >= 2 and b == 0x03:
            zeros = 0
            continue
        out.append(b)
        zeros = zeros + 1 if b == 0 else 0
    return bytes(out)


# ----------------------------------------------------------------------
# BitReader chunk cache
# ----------------------------------------------------------------------
class TestChunkBoundaryReads:
    """Deterministic probes at the exact 32-byte refill boundaries."""

    @pytest.fixture(scope="class")
    def data(self):
        # 3.5 chunks of position-dependent bytes (no accidental symmetry).
        return bytes((i * 37 + 11) % 256 for i in range(_CACHE_BYTES * 3 + 16))

    @pytest.mark.parametrize("nbits", [1, 7, 8, 9, 17, 33, 64])
    @pytest.mark.parametrize(
        "edge", [_CACHE_BITS, 2 * _CACHE_BITS], ids=["chunk1", "chunk2"]
    )
    def test_reads_straddling_refill_boundary(self, data, nbits, edge):
        for pos in range(edge - nbits - 1, edge + 2):
            if pos < 0:
                continue
            r = BitReader(data, start_bit=pos)
            assert r.read_bits(nbits) == naive_read(data, pos, nbits), (
                f"read of {nbits} bits at {pos} (edge {edge})"
            )

    def test_oversized_read_bypasses_cache_then_resumes(self, data):
        r = BitReader(data)
        big = _MAX_CACHED_READ + 9  # forces the no-cache path
        assert r.read_bits(big) == naive_read(data, 0, big)
        # Next small read must refill correctly after the bypass.
        assert r.read_bits(13) == naive_read(data, big, 13)

    def test_backward_seek_refills(self, data):
        r = BitReader(data)
        r.read_bits(_CACHE_BITS + 5)  # cache now holds chunk 2
        r.bit_position = 3  # seek back before the cached window
        assert r.read_bits(16) == naive_read(data, 3, 16)

    def test_peek_then_read_consistency_at_boundary(self, data):
        pos = _CACHE_BITS - 5
        r = BitReader(data, start_bit=pos)
        peeked = r.peek_bits(24)
        assert peeked == naive_peek(data, pos, 24)
        assert r.read_bits(24) == peeked

    def test_tail_peek_zero_padded_across_chunk(self):
        # Buffer ends 3 bits into what the peek wants; padding is zeros.
        data = bytes(range(1, _CACHE_BYTES + 2))
        pos = len(data) * 8 - 3
        r = BitReader(data, start_bit=pos)
        assert r.peek_bits(16) == naive_peek(data, pos, 16)
        assert r.peek_bits(300) == naive_peek(data, pos, 300)

    def test_read_past_end_raises_but_peek_does_not(self):
        r = BitReader(b"\xab")
        assert r.peek_bits(64) == 0xAB << 56
        with pytest.raises(BitstreamError):
            r.read_bits(9)


@settings(max_examples=200, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=_CACHE_BYTES * 3 + 7),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["read", "peek", "align", "seek", "skip"]),
            st.integers(min_value=1, max_value=_MAX_CACHED_READ + 16),
        ),
        max_size=24,
    ),
)
def test_bitreader_matches_naive_model(data, ops):
    """Random op sequences: cached reader == whole-buffer big-int math."""
    r = BitReader(data)
    total = len(data) * 8
    pos = 0
    for op, n in ops:
        if op == "read":
            n = min(n, total - pos)
            if n == 0:
                continue
            assert r.read_bits(n) == naive_read(data, pos, n)
            pos += n
        elif op == "peek":
            assert r.peek_bits(n) == naive_peek(data, pos, n)
        elif op == "align":
            r.align()
            pos = (pos + 7) & ~7
        elif op == "seek":
            pos = n % (total + 1)
            r.bit_position = pos
        elif op == "skip":
            n = min(n, total - pos)
            r.skip_bits(n)
            pos += n
        assert r.bit_position == pos
        assert r.bits_remaining == total - pos


# ----------------------------------------------------------------------
# unescape_payload splice
# ----------------------------------------------------------------------
class TestUnescapeBoundaries:
    def test_empty_payload(self):
        assert unescape_payload(b"") == b""
        assert escape_payload(b"") == b""

    def test_all_stuffing_payload(self):
        # escape(00 00 00 00 00 00) inserts a stuffing byte per pair.
        raw = b"\x00" * 6
        escaped = escape_payload(raw)
        assert escaped == b"\x00\x00\x03\x00\x00\x03\x00\x00"
        assert unescape_payload(escaped) == raw

    def test_back_to_back_stuffing(self):
        assert unescape_payload(b"\x00\x00\x03\x00\x00\x03") == b"\x00" * 4

    def test_stuffing_at_payload_tail(self):
        assert unescape_payload(b"\xff\x00\x00\x03") == b"\xff\x00\x00"

    def test_payload_ending_in_zero_run(self):
        raw = b"\x01\x00\x00"
        assert unescape_payload(escape_payload(raw)) == raw

    def test_lone_03_not_dropped(self):
        # 03 not preceded by two zeros is data, not stuffing.
        assert unescape_payload(b"\x00\x03\x00\x03") == b"\x00\x03\x00\x03"

    def test_zero_run_reset_by_stuffing(self):
        # After dropping stuffing, the zero run restarts: the 03 that
        # follows only one further zero is data.
        assert unescape_payload(b"\x00\x00\x03\x00\x03") == b"\x00\x00\x00\x03"

    @pytest.mark.parametrize("offset", range(_CACHE_BYTES - 4, _CACHE_BYTES + 3))
    def test_stuffing_straddles_bitreader_chunk(self, offset):
        """A 00 00 03 whose bytes straddle the reader's refill edge.

        The escape sits at ``offset`` in the *escaped* payload, so the
        unescaped bytes shift and every later BitReader chunk refill
        happens at a different buffer position than in the escaped
        view — the combination the slice decoder actually runs.
        """
        raw = bytearray(bytes((i * 29 + 1) % 256 for i in range(_CACHE_BYTES * 2)))
        raw[offset : offset + 3] = b"\x00\x00\x01"  # forces a stuffing byte
        escaped = escape_payload(bytes(raw))
        assert contains_start_code_prefix(escaped) is False
        clean = unescape_payload(escaped)
        assert clean == bytes(raw)
        # Read the whole cleaned buffer through the chunked reader.
        r = BitReader(clean)
        for bpos in range(0, len(clean) * 8, 24):
            n = min(24, len(clean) * 8 - bpos)
            assert r.read_bits(n) == naive_read(clean, bpos, n)


#: Byte strings drawn from a zero-heavy alphabet — maximal stuffing
#: density, the adversarial case for the splice arithmetic.
zero_heavy_bytes = st.lists(
    st.sampled_from([0x00, 0x01, 0x02, 0x03, 0xFF]),
    max_size=3 * _CACHE_BYTES,
).map(bytes)


@settings(max_examples=300, deadline=None)
@given(payload=zero_heavy_bytes)
def test_unescape_matches_state_machine(payload):
    """find-and-splice == byte-at-a-time state machine, any input."""
    assert unescape_payload(payload) == naive_unescape(payload)


@settings(max_examples=300, deadline=None)
@given(raw=zero_heavy_bytes)
def test_escape_roundtrip_and_safety(raw):
    escaped = escape_payload(raw)
    assert unescape_payload(escaped) == raw
    assert not contains_start_code_prefix(escaped)
    # No 00 00 0x (x <= 2) pattern survives escaping: after two zeros
    # the only byte <= 0x03 that may follow is the 0x03 stuffing byte
    # itself.  (00 00 01 would be a start code; 00 00 00 / 00 00 02
    # would let a later byte complete one.)
    for i in range(len(escaped) - 2):
        if escaped[i] == 0 and escaped[i + 1] == 0:
            assert escaped[i + 2] >= 0x03
