"""Measurement helpers matching the paper's methodology (Section 5.1.1).

Speedup is defined exactly as in the paper: pictures/second with ``P``
worker processes (P+2 processors total) over pictures/second with one
worker process (3 processors total) — *not* over a uniprocessor that
multiplexes scan and display, which would inflate the numbers.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.parallel.gop_level import DecodeRunResult


def pictures_per_second(result: DecodeRunResult) -> float:
    return result.pictures_per_second


def speedup_curve(
    run: Callable[[int], DecodeRunResult], worker_counts: Iterable[int]
) -> dict[int, float]:
    """Speedup at each worker count, per the paper's definition.

    ``run(P)`` must simulate the decode with ``P`` workers.  The
    baseline is ``run(1)`` (computed once, first).
    """
    counts = list(worker_counts)
    base = run(1).pictures_per_second
    curve: dict[int, float] = {}
    for p in counts:
        rate = base if p == 1 else run(p).pictures_per_second
        curve[p] = rate / base
    return curve


def load_balance(result: DecodeRunResult) -> tuple[int, int, float]:
    """(min, max, mean) of worker computing time (Fig. 6's measure)."""
    execs = [result.worker_exec(i) for i in range(len(result.worker_busy))]
    return min(execs), max(execs), sum(execs) / len(execs)


def imbalance_ratio(result: DecodeRunResult) -> float:
    """max/mean worker computing time; 1.0 is perfectly balanced."""
    lo, hi, mean = load_balance(result)
    return hi / mean if mean else 1.0


def sync_ratio(result: DecodeRunResult) -> float:
    """Average worker sync-wait / execution-time ratio (Fig. 12)."""
    return result.mean_sync_ratio


def ideal_vs_actual(result: DecodeRunResult) -> tuple[int, int]:
    """(ideal, actual) time summed over workers — the Fig. 7 bars.

    Ideal is pixie-style busy time; actual adds the modelled memory
    stalls.
    """
    ideal = sum(result.worker_busy)
    actual = ideal + sum(result.worker_stall)
    return ideal, actual
