"""Hypothesis properties of the executor's graph + controller.

Three families, matching the guarantees the executor's docstrings
claim:

1. **Dependency safety** — over *generated* task graphs (random DAGs,
   random dispatch interleavings): no node is ever scheduled before
   its ref edges published.  :meth:`TaskGraph.dispatch` must refuse
   structurally, and :meth:`TaskGraph.run_all`'s visit order must
   respect every edge.
2. **Task conservation** — ``planned == dispatched == completed +
   cancelled`` after any mix of full runs and error-path
   cancellations; the monotone counters cannot drift from the state
   map.
3. **Decision determinism** — :class:`AutoGranularity` is a pure
   function: the same profile yields the same :class:`Decision`, and
   the same ``(prev, ObsSnapshot)`` yields the same re-pick, every
   time.  This is what makes ``--grain auto`` runs reproducible given
   the same observations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bandwidth import BandwidthProfile, GopBandwidth
from repro.exec.auto import (
    IDLE_REPICK_FRAC,
    SYNC_REPICK_FRAC,
    AutoGranularity,
    CostModel,
    Decision,
    ObsSnapshot,
)
from repro.exec.graph import TaskGraph, TaskNode
from repro.exec.plan import plan_gop_graph, plan_graph, plan_slice_graph


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def task_graphs(draw) -> TaskGraph:
    """A random DAG: each node depends on a subset of earlier nodes.

    Edges only point backwards in plan order, so every generated graph
    is acyclic by construction — the same property :meth:`TaskGraph.
    add`'s "deps must already exist" rule enforces for planners.
    """
    n = draw(st.integers(min_value=1, max_value=24))
    graph = TaskGraph()
    kinds = ("parse", "reconstruct", "publish")
    for i in range(n):
        max_deps = min(i, 3)
        k = draw(st.integers(min_value=0, max_value=max_deps))
        deps = draw(
            st.lists(
                st.integers(min_value=0, max_value=i - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        ) if i else []
        graph.add(
            TaskNode(
                tid=f"t{i}",
                kind=kinds[i % 3],
                order=i,
                deps=tuple(f"t{d}" for d in deps),
            )
        )
    return graph


@st.composite
def profiles(draw) -> BandwidthProfile:
    """A synthetic per-stream bandwidth profile (profiler-shaped)."""
    n_gops = draw(st.integers(min_value=1, max_value=12))
    pics_per_gop = draw(st.integers(min_value=1, max_value=15))
    gop_bytes = draw(st.integers(min_value=64, max_value=200_000))
    fps = 30.0
    gops = tuple(
        GopBandwidth(
            gop=g,
            pictures=pics_per_gop,
            wire_bytes=gop_bytes,
            seconds=pics_per_gop / fps,
            bps=gop_bytes * 8 * fps / pics_per_gop,
        )
        for g in range(n_gops)
    )
    total = gop_bytes * n_gops
    return BandwidthProfile(
        stream_bytes=total,
        pictures=pics_per_gop * n_gops,
        fps=fps,
        mean_bps=gops[0].bps,
        peak_bps=gops[0].bps,
        burstiness=1.0,
        gops=gops,
        mean_picture_bytes={"I": float(gop_bytes) / pics_per_gop},
    )


def snapshots():
    finite = st.floats(
        min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
    )
    return st.builds(
        ObsSnapshot,
        wall_s=st.floats(
            min_value=1e-3, max_value=1e3,
            allow_nan=False, allow_infinity=False,
        ),
        pictures=st.integers(min_value=1, max_value=10_000),
        queue_depth=st.integers(min_value=0, max_value=64),
        worker_idle_s=finite,
        barrier_s=finite,
        ref_publish_s=finite,
    )


def decisions():
    grains = st.sampled_from(("gop", "slice"))
    engines = st.sampled_from(("scalar", "batched"))
    cost = st.floats(
        min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
    )
    return st.builds(
        Decision,
        grain=grains,
        engine=engines,
        est_cost=cost,
        alt_grain=grains,
        alt_engine=engines,
        alt_cost=cost,
        reason=st.sampled_from(("profile", "steady", "fixed")),
    )


# ----------------------------------------------------------------------
# 1. dependency safety
# ----------------------------------------------------------------------
class TestDependencySafety:
    @settings(max_examples=60, deadline=None)
    @given(graph=task_graphs())
    def test_run_all_never_schedules_before_refs_publish(self, graph):
        done: set[str] = set()

        def on_node(node: TaskNode) -> None:
            for dep in node.deps:
                assert dep in done, (
                    f"{node.tid} scheduled before ref edge {dep} published"
                )
            done.add(node.tid)

        ran = graph.run_all(on_node=on_node)
        assert ran == len(graph.nodes)

    @settings(max_examples=60, deadline=None)
    @given(graph=task_graphs())
    def test_dispatch_refuses_unpublished_deps(self, graph):
        # Any node with at least one dep must be refused while that
        # dep is still pending; nodes with no deps must be accepted.
        for node in graph.nodes.values():
            if node.deps:
                with pytest.raises(ValueError, match="before its ref edges"):
                    graph.dispatch(node.tid)
                break

    @settings(max_examples=60, deadline=None)
    @given(graph=task_graphs(), data=st.data())
    def test_random_interleaving_stays_safe(self, graph, data):
        # Drive the graph manually with randomized ready-set picks;
        # whatever the order, dispatch only ever accepts ready nodes.
        while True:
            ready = graph.ready()
            if not ready:
                break
            node = data.draw(
                st.sampled_from(ready), label="next dispatch"
            )
            graph.dispatch(node.tid)
            graph.complete(node.tid)
        graph.verify_conservation()

    def test_graph_construction_rejects_bad_edges(self):
        g = TaskGraph()
        g.add(TaskNode(tid="a", kind="parse"))
        with pytest.raises(ValueError, match="duplicate"):
            g.add(TaskNode(tid="a", kind="parse"))
        with pytest.raises(ValueError, match="unknown task"):
            g.add(TaskNode(tid="b", kind="parse", deps=("missing",)))
        with pytest.raises(ValueError, match="itself"):
            g.add(TaskNode(tid="c", kind="parse", deps=("c",)))
        with pytest.raises(ValueError, match="unknown task kind"):
            TaskNode(tid="d", kind="bogus")


# ----------------------------------------------------------------------
# 2. conservation
# ----------------------------------------------------------------------
class TestConservation:
    @settings(max_examples=60, deadline=None)
    @given(graph=task_graphs())
    def test_full_run_conserves(self, graph):
        graph.run_all()
        graph.verify_conservation()
        c = graph.counts()
        assert c["planned"] == c["dispatched"] == c["completed"]
        assert c["cancelled"] == 0

    @settings(max_examples=60, deadline=None)
    @given(graph=task_graphs(), stop_after=st.integers(min_value=0, max_value=24))
    def test_aborted_run_conserves_with_cancellations(self, graph, stop_after):
        # Simulate an error path: run some prefix, then cancel the
        # rest (what the executor does when a worker dies).
        ran = 0
        while ran < stop_after:
            ready = graph.ready()
            if not ready:
                break
            graph.dispatch(ready[0].tid)
            graph.complete(ready[0].tid)
            ran += 1
        graph.cancel_pending()
        assert graph.is_settled()
        graph.verify_conservation()
        c = graph.counts()
        assert c["planned"] == c["completed"] + c["cancelled"]

    def test_conservation_violation_is_loud(self):
        g = TaskGraph()
        g.add(TaskNode(tid="a", kind="parse"))
        with pytest.raises(RuntimeError, match="conservation"):
            g.verify_conservation()  # planned but never dispatched

    def test_planner_graphs_conserve_on_real_index(self, golden):
        index = golden.index("ipb_64x48_gop13")
        for grain in ("gop", "slice"):
            graph = plan_graph(index, grain)
            graph.run_all()
            graph.verify_conservation()

    def test_gop_plan_shape(self, golden):
        index = golden.index("two_gop_48x32")
        graph = plan_gop_graph(index)
        # Three typed nodes per GOP, chained parse->reconstruct->publish.
        assert len(graph.nodes) == 3 * len(index.gops)
        for gi in range(len(index.gops)):
            rec = graph.nodes[f"g{gi}.reconstruct"]
            assert rec.deps == (f"g{gi}.parse",)
            pub = graph.nodes[f"g{gi}.publish"]
            assert pub.deps == (f"g{gi}.reconstruct",)

    def test_slice_plan_b_pictures_wait_on_both_refs(self, golden):
        index = golden.index("ipb_64x48_gop13")
        graph = plan_slice_graph(index)
        graph.run_all()  # structurally runnable
        graph.verify_conservation()
        # Every reconstruct node depends at least on its own parse.
        for node in graph.nodes.values():
            if node.kind == "reconstruct":
                assert any(d.endswith(".parse") for d in node.deps)


# ----------------------------------------------------------------------
# 3. decision determinism
# ----------------------------------------------------------------------
class TestDecisionDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(
        profile=profiles(),
        workers=st.integers(min_value=0, max_value=8),
    )
    def test_decide_is_deterministic(self, profile, workers):
        ctl = AutoGranularity(profile=profile, workers=workers)
        assert ctl.decide() == ctl.decide()
        # And a freshly-built controller over the same inputs agrees.
        again = AutoGranularity(profile=profile, workers=workers)
        assert again.decide() == ctl.decide()

    @settings(max_examples=80, deadline=None)
    @given(
        profile=profiles(),
        workers=st.integers(min_value=0, max_value=8),
        prev=decisions(),
        snap=snapshots(),
    )
    def test_repick_is_deterministic(self, profile, workers, prev, snap):
        ctl = AutoGranularity(profile=profile, workers=workers)
        assert ctl.repick(prev, snap) == ctl.repick(prev, snap)

    @settings(max_examples=80, deadline=None)
    @given(
        profile=profiles(),
        workers=st.integers(min_value=0, max_value=8),
        prev=decisions(),
        snap=snapshots(),
    )
    def test_repick_moves_only_on_the_documented_signals(
        self, profile, workers, prev, snap
    ):
        ctl = AutoGranularity(profile=profile, workers=workers)
        new = ctl.repick(prev, snap)
        if new.grain != prev.grain:
            if new.grain == "slice":
                assert prev.grain == "gop"
                assert snap.idle_frac > IDLE_REPICK_FRAC
                assert new.reason == "worker-idle"
            else:
                assert prev.grain == "slice"
                assert snap.sync_frac > SYNC_REPICK_FRAC
                assert new.reason == "sync-bound"
        else:
            assert new.reason in ("steady", "worker-idle", "sync-bound")
        # A re-pick never flips the engine mid-stream.
        assert new.engine == prev.engine

    @settings(max_examples=40, deadline=None)
    @given(
        profile=profiles(),
        workers=st.integers(min_value=0, max_value=8),
        prev=decisions(),
        snap=snapshots(),
    )
    def test_pinned_grain_never_repicks(self, profile, workers, prev, snap):
        ctl = AutoGranularity(
            profile=profile, workers=workers, grain_hint=prev.grain
        )
        new = ctl.repick(prev, snap)
        assert (new.grain, new.engine) == (prev.grain, prev.engine)
        assert new.reason == "pinned"

    @settings(max_examples=40, deadline=None)
    @given(profile=profiles(), workers=st.integers(min_value=0, max_value=8))
    def test_decision_carries_the_rejected_alternative(self, profile, workers):
        d = AutoGranularity(profile=profile, workers=workers).decide()
        assert d.est_cost <= d.alt_cost
        assert (d.grain, d.engine) != (d.alt_grain, d.alt_engine)

    @settings(max_examples=40, deadline=None)
    @given(profile=profiles(), workers=st.integers(min_value=0, max_value=8))
    def test_hints_pin_their_axis(self, profile, workers):
        for grain in ("gop", "slice"):
            d = AutoGranularity(
                profile=profile, workers=workers, grain_hint=grain
            ).decide()
            assert d.grain == grain
        for engine in ("scalar", "batched"):
            d = AutoGranularity(
                profile=profile, workers=workers, engine_hint=engine
            ).decide()
            assert d.engine == engine

    def test_obs_snapshot_from_stall_table(self):
        from repro.obs.stalls import (
            REASON_BARRIER,
            REASON_QUEUE_GET,
            REASON_REF_PUBLISH,
            StallTable,
        )

        stalls = StallTable()
        stalls.record("worker-0", REASON_QUEUE_GET, 0.5)
        stalls.record("worker-1", REASON_QUEUE_GET, 0.25)
        stalls.record("merge", REASON_QUEUE_GET, 9.0)  # not worker idle
        stalls.record("worker-0", REASON_BARRIER, 0.125)
        stalls.record("worker-1", REASON_REF_PUBLISH, 0.0625)
        snap = ObsSnapshot.from_run(stalls, wall_s=1.0, pictures=10)
        assert snap.worker_idle_s == pytest.approx(0.75)
        assert snap.barrier_s == pytest.approx(0.125)
        assert snap.ref_publish_s == pytest.approx(0.0625)
        assert snap.idle_frac == pytest.approx(0.75)
        assert snap.sync_frac == pytest.approx(0.1875)

    def test_cost_model_prefers_batched(self):
        # Same shape, scalar engine strictly more expensive.
        model = CostModel()
        assert model.engine_cost(10_000, "scalar") > model.engine_cost(
            10_000, "batched"
        )
