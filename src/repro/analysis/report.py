"""Text rendering: tables, ASCII series, paper-vs-measured rows."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class TextTable:
    """A right-aligned monospace table (first column left-aligned)."""

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            parts = [cells[0].ljust(widths[0])]
            parts += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
            return "  ".join(parts)

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt_row(r) for r in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def ascii_series(
    points: Iterable[tuple[float, float]],
    width: int = 50,
    label: str = "",
) -> str:
    """A one-line-per-point bar rendering of an (x, y) series."""
    pts = list(points)
    if not pts:
        return f"{label}: (no data)"
    peak = max(y for _, y in pts) or 1.0
    lines = [label] if label else []
    for x, y in pts:
        bar = "#" * max(int(round(width * y / peak)), 0)
        lines.append(f"  {_fmt(x):>8}  {bar} {_fmt(y)}")
    return "\n".join(lines)


def comparison_table(
    title: str,
    rows: Iterable[tuple[str, object, object]],
    paper_label: str = "paper",
    measured_label: str = "measured",
) -> str:
    """Paper-vs-measured rows with a ratio column (EXPERIMENTS.md food)."""
    table = TextTable(["case", paper_label, measured_label, "ratio"], title=title)
    for name, paper, measured in rows:
        ratio = ""
        if isinstance(paper, (int, float)) and isinstance(measured, (int, float)) and paper:
            ratio = f"{measured / paper:.2f}x"
        table.add_row(name, paper, measured, ratio)
    return table.render()


def doubling_ratios(series: dict[int, float]) -> list[float]:
    """Successive ratios y[k]/y[k+1] for doubling x keys (Fig. 13).

    A value near 2.0 means the metric halves per doubling.
    """
    keys = sorted(series)
    return [
        series[a] / series[b] if series[b] else float("inf")
        for a, b in zip(keys, keys[1:])
    ]


def format_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024:
            return f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}TB"
