"""Deterministic canonical Huffman code construction.

MPEG's VLC tables are hand-designed Huffman codes.  We construct our
codebooks with a classic Huffman build over declared symbol weights,
then assign *canonical* codewords (sorted by length, then by symbol
declaration order).  The result is prefix-free by construction and
deterministic across runs/platforms — both properties are verified by
the test suite.

DESIGN.md documents this substitution: the codebooks are structural
equivalents of the standard's tables (same symbols, same escape
mechanism, near-identical lengths for the common symbols), not
bit-identical copies.  Nothing in the paper's evaluation depends on the
exact code bits, only on there *being* variable-length coding whose
cost scales with the bit rate.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Mapping, Sequence

Symbol = Hashable


def huffman_code_lengths(weights: Mapping[Symbol, float]) -> dict[Symbol, int]:
    """Compute Huffman code lengths for ``weights``.

    Ties are broken by declaration order of the symbols in the mapping,
    making the construction fully deterministic.  A single-symbol
    alphabet gets a 1-bit code.
    """
    if not weights:
        raise ValueError("cannot build a Huffman code over an empty alphabet")
    symbols = list(weights)
    if len(symbols) == 1:
        return {symbols[0]: 1}

    # Heap entries: (weight, tiebreak, node). Leaves are symbol indices,
    # internal nodes are (left, right) tuples.
    heap: list[tuple[float, int, object]] = [
        (float(weights[s]), i, i) for i, s in enumerate(symbols)
    ]
    heapq.heapify(heap)
    counter = len(symbols)
    while len(heap) > 1:
        w1, _, n1 = heapq.heappop(heap)
        w2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (w1 + w2, counter, (n1, n2)))
        counter += 1

    lengths: dict[Symbol, int] = {}
    stack: list[tuple[object, int]] = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, tuple):
            left, right = node
            stack.append((left, depth + 1))
            stack.append((right, depth + 1))
        else:
            lengths[symbols[node]] = depth
    return lengths


def canonical_codes(lengths: Mapping[Symbol, int]) -> dict[Symbol, str]:
    """Assign canonical codewords for the given code lengths.

    Symbols are ordered by (length, declaration order); codewords are
    the standard canonical sequence.  Returns codewords as bit strings.
    The assignment is prefix-free whenever the lengths satisfy the
    Kraft inequality (Huffman lengths always do, with equality).
    """
    declared = {s: i for i, s in enumerate(lengths)}
    ordered = sorted(lengths, key=lambda s: (lengths[s], declared[s]))
    codes: dict[Symbol, str] = {}
    code = 0
    prev_len = 0
    for sym in ordered:
        length = lengths[sym]
        code <<= length - prev_len
        codes[sym] = format(code, f"0{length}b")
        code += 1
        prev_len = length
    # Kraft check: the final (code) value must not overflow prev_len bits.
    if prev_len and code > (1 << prev_len):
        raise ValueError("code lengths violate the Kraft inequality")
    return codes


def build_codebook(
    weights: Mapping[Symbol, float], max_length: int = 16
) -> dict[Symbol, str]:
    """Length-limited canonical Huffman codebook.

    MPEG's own tables max out at 17 bits; we cap at ``max_length`` so
    the decoder's dense peek table stays small.  When plain Huffman
    exceeds the cap the weights are progressively flattened (raised to
    a power < 1) until it fits — a simple, deterministic alternative to
    package-merge that preserves the weight ordering, hence the
    code-length ordering, of the symbols.
    """
    w = dict(weights)
    for _ in range(64):
        lengths = huffman_code_lengths(w)
        if max(lengths.values()) <= max_length:
            return canonical_codes(lengths)
        w = {s: float(v) ** 0.85 for s, v in w.items()}
    # Fully flattened fallback: fixed-length code.
    n = len(w)
    fixed = max((n - 1).bit_length(), 1)
    if fixed > max_length:
        raise ValueError(f"{n} symbols cannot fit in {max_length}-bit codes")
    return canonical_codes({s: fixed for s in w})


def geometric_weights(symbols: Sequence[Symbol], ratio: float = 0.72) -> dict[Symbol, float]:
    """Geometrically decaying weights in declaration order.

    MPEG's tables assign monotonically longer codes to rarer symbols;
    a geometric prior over the declared symbol order reproduces that
    shape.  ``ratio`` controls how fast code lengths grow.
    """
    if not 0.0 < ratio < 1.0:
        raise ValueError(f"ratio must be in (0, 1), got {ratio}")
    return {s: ratio**i for i, s in enumerate(symbols)}
