"""Report rendering helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    TextTable,
    ascii_series,
    comparison_table,
    doubling_ratios,
    format_bytes,
)
from repro.parallel.profile import profile_stream, tile_profile


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(["name", "value"], title="T")
        t.add_row("a", 1)
        t.add_row("longer", 123.456)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(l) for l in lines[2:]}) == 1  # equal widths

    def test_row_width_checked(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_float_formatting(self):
        t = TextTable(["x"])
        t.add_row(0.12345)
        assert "0.1234" in t.render() or "0.1235" in t.render()


class TestSeriesHelpers:
    def test_ascii_series_scales_bars(self):
        out = ascii_series([(1, 1.0), (2, 2.0)], width=10, label="s")
        lines = out.splitlines()
        assert lines[0] == "s"
        assert lines[2].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty_series(self):
        assert "(no data)" in ascii_series([], label="x")

    def test_doubling_ratios(self):
        series = {16: 0.8, 32: 0.4, 64: 0.2}
        assert doubling_ratios(series) == pytest.approx([2.0, 2.0])

    def test_comparison_table_ratio(self):
        out = comparison_table("t", [("case", 10.0, 5.0)])
        assert "0.50x" in out

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024**2) == "3.0MB"


class TestSliceGopsAndSynthesize:
    def test_slice_gops_drops_warmup(self, medium_stream):
        from repro.parallel.profile import slice_gops

        profile, _ = profile_stream(medium_stream)
        trimmed = slice_gops(profile, 1)
        assert len(trimmed.gops) == len(profile.gops) - 1
        assert trimmed.gops[0].index == 0
        indices = sorted(
            p.display_index for g in trimmed.gops for p in g.pictures
        )
        assert indices == list(range(trimmed.picture_count))
        assert trimmed.total_bytes == sum(g.wire_bytes for g in trimmed.gops)

    def test_slice_gops_empty_range_rejected(self, medium_stream):
        from repro.parallel.profile import slice_gops

        profile, _ = profile_stream(medium_stream)
        with pytest.raises(ValueError):
            slice_gops(profile, 5)

    def test_synthesize_profile_structure(self, medium_stream):
        from repro.mpeg2.constants import PictureType
        from repro.parallel.profile import synthesize_profile

        base, _ = profile_stream(medium_stream)
        out = synthesize_profile(base, gop_size=31, gops=3)
        assert len(out.gops) == 3
        assert out.picture_count == 93
        for gop in out.gops:
            types = [p.picture_type for p in gop.pictures]
            assert types[0] is PictureType.I
            assert types.count(PictureType.P) == 10
            assert types.count(PictureType.B) == 20
        indices = sorted(
            p.display_index for g in out.gops for p in g.pictures
        )
        assert indices == list(range(93))

    def test_synthesize_profile_reuses_measured_work(self, medium_stream):
        from repro.parallel.profile import synthesize_profile

        base, _ = profile_stream(medium_stream)
        out = synthesize_profile(base, gop_size=13, gops=2)
        measured_bits = {
            p.total_counters().bits for g in base.gops for p in g.pictures
        }
        for g in out.gops:
            for p in g.pictures:
                assert p.total_counters().bits in measured_bits

    def test_synthesize_simulates(self, medium_stream):
        from repro.parallel import GopLevelDecoder, ParallelConfig
        from repro.parallel.profile import synthesize_profile
        from repro.smp import challenge

        base, _ = profile_stream(medium_stream)
        out = synthesize_profile(base, gop_size=4, gops=12)
        result = GopLevelDecoder(out).run(
            ParallelConfig(workers=4, machine=challenge(6))
        )
        assert len(result.display_times) == 48


class TestTileProfile:
    def test_tiling_scales_counts(self, medium_stream):
        profile, _ = profile_stream(medium_stream)
        tiled = tile_profile(profile, 3)
        assert tiled.picture_count == 3 * profile.picture_count
        assert len(tiled.gops) == 3 * len(tiled.gops) // 3
        assert tiled.total_bytes == 3 * profile.total_bytes
        assert tiled.total_counters().bits == 3 * profile.total_counters().bits

    def test_display_indices_unique_and_dense(self, medium_stream):
        profile, _ = profile_stream(medium_stream)
        tiled = tile_profile(profile, 4)
        indices = sorted(
            p.display_index for g in tiled.gops for p in g.pictures
        )
        assert indices == list(range(tiled.picture_count))

    def test_gop_indices_renumbered(self, medium_stream):
        profile, _ = profile_stream(medium_stream)
        tiled = tile_profile(profile, 2)
        assert [g.index for g in tiled.gops] == list(range(len(tiled.gops)))

    def test_tiled_profile_simulates(self, medium_stream):
        from repro.parallel import GopLevelDecoder, ParallelConfig
        from repro.smp import challenge

        profile, _ = profile_stream(medium_stream)
        tiled = tile_profile(profile, 5)  # 10 GOPs
        r4 = GopLevelDecoder(tiled).run(
            ParallelConfig(workers=4, machine=challenge(6))
        )
        r1 = GopLevelDecoder(tiled).run(
            ParallelConfig(workers=1, machine=challenge(3))
        )
        # Near-linear; short pipelines (10 GOPs) lose a little to
        # startup/drain, so allow ~3.2x at P=4.
        assert 3.2 < r4.pictures_per_second / r1.pictures_per_second <= 4.05

    def test_invalid_repeats(self, medium_stream):
        profile, _ = profile_stream(medium_stream)
        with pytest.raises(ValueError):
            tile_profile(profile, 0)
