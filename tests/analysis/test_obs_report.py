"""obs_report CLI: single-file report, --merged waterfall, failures.

Driven entirely from the committed miniature fixtures in
``tests/analysis/fixtures/`` (regenerate with ``make_fixtures.py``),
so the CLI paths are covered without a live decode.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.obs_report import (
    load_trace,
    main,
    render_merged_report,
    render_report,
    span_totals,
    stall_breakdown,
    utilization,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
SOLO = os.path.join(FIXTURES, "solo_trace.json")
SERVER = os.path.join(FIXTURES, "server_shard.json")
CLIENT = os.path.join(FIXTURES, "client_shard.json")


class TestAnalysis:
    def test_span_totals_from_fixture(self):
        totals = span_totals(load_trace(SOLO))
        assert totals["decode.picture"]["count"] == 3
        assert totals["decode.picture"]["total_ms"] == pytest.approx(18.0)

    def test_utilization_from_fixture(self):
        util = utilization(load_trace(SOLO))
        (rec,) = util.values()
        assert rec["busy_ms"] == pytest.approx(18.0)
        assert rec["stall_ms"] == pytest.approx(3.0)

    def test_stall_breakdown_from_fixture(self):
        breakdown = stall_breakdown(load_trace(SOLO))
        assert set(breakdown) == {"input"}


class TestSingleFileCLI:
    def test_report_renders(self, capsys):
        assert main([SOLO]) == 0
        out = capsys.readouterr().out
        assert "span totals" in out
        assert "decode.picture" in out
        assert "per-process utilization" in out
        assert "stall breakdown" in out

    def test_render_report_is_pure(self):
        text = render_report(load_trace(SOLO))
        assert "decode worker" in text

    def test_multiple_files_without_merged_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main([SERVER, CLIENT])


class TestMergedCLI:
    def test_merged_waterfall(self, capsys):
        assert main(["--merged", SERVER, CLIENT]) == 0
        out = capsys.readouterr().out
        assert "3 pictures joined" in out
        assert "clock sync" in out
        assert "e2e.wire" in out
        assert "e2e.reassemble" in out
        assert "deadline.lateness" in out

    def test_merged_writes_out_doc(self, tmp_path, capsys):
        out_path = str(tmp_path / "merged.json")
        assert main(["--merged", SERVER, CLIENT, "--out", out_path]) == 0
        with open(out_path) as fh:
            doc = json.load(fh)
        assert "baseTimeNs" in doc
        # Events from both pids made it into one document.
        pids = {e.get("pid") for e in doc["traceEvents"]}
        assert {100, 200} <= pids

    def test_clock_offset_cancelled_in_merge(self, tmp_path):
        # The client's clock runs 2ms behind; after the merge its
        # reassemble spans must land 2ms (flight time) after the wire
        # spans, not 4ms.
        out_path = str(tmp_path / "merged.json")
        main(["--merged", SERVER, CLIENT, "--out", out_path])
        with open(out_path) as fh:
            doc = json.load(fh)
        wire = sorted(
            (e for e in doc["traceEvents"] if e.get("name") == "e2e.wire"),
            key=lambda e: e["ts"],
        )
        reasm = sorted(
            (
                e for e in doc["traceEvents"]
                if e.get("name") == "e2e.reassemble"
            ),
            key=lambda e: e["ts"],
        )
        for w, r in zip(wire, reasm):
            assert r["ts"] - w["ts"] == pytest.approx(2000.0, abs=1.0)

    def test_merged_single_shard_fails_join(self, capsys):
        # A server shard alone has nothing crossing the boundary; the
        # CLI must fail loudly rather than pass vacuously.
        assert main(["--merged", SERVER]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_orphan_client_span_fails(self, tmp_path, capsys):
        # Strip one server wire span: its client picture is orphaned.
        doc = load_trace(SERVER)
        doc["traceEvents"] = [
            e for e in doc["traceEvents"]
            if not (
                e.get("name") == "e2e.wire"
                and e.get("args", {}).get("pic") == 2
            )
        ]
        broken = str(tmp_path / "server.json")
        with open(broken, "w") as fh:
            json.dump(doc, fh)
        assert main(["--merged", broken, CLIENT]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_missing_base_time_fails_with_hint(self, tmp_path, capsys):
        doc = load_trace(CLIENT)
        del doc["baseTimeNs"]
        old = str(tmp_path / "old.json")
        with open(old, "w") as fh:
            json.dump(doc, fh)
        assert main(["--merged", SERVER, old]) == 1
        assert "baseTimeNs" in capsys.readouterr().err

    def test_fixtures_match_generator(self):
        # The committed fixtures are exactly what make_fixtures.py
        # produces — regeneration is reproducible, not drift.
        import tests.analysis.fixtures.make_fixtures as gen

        assert load_trace(SOLO) == gen.solo_trace()
        assert load_trace(SERVER) == gen.server_shard()
        assert load_trace(CLIENT) == gen.client_shard()


class TestMergedRender:
    def test_render_merged_report_pure(self):
        from repro.obs.propagate import merge_traces

        doc = merge_traces([load_trace(SERVER), load_trace(CLIENT)])
        text = render_merged_report(doc)
        assert "end-to-end latency waterfall" in text
        assert "fix#0" in text
