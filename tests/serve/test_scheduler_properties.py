"""Hypothesis properties of the weighted-fair serve scheduler.

The :class:`repro.serve.scheduler.Scheduler` is pure logic by design
so this suite can drive it through millions of orderings and pin the
invariants the service stakes its correctness on:

* **fair-share bound** — among continuously-backlogged sessions,
  start-time fair queueing keeps the spread of virtual times
  (``served / weight``) within ``max(task.work / weight)``: one
  session can never starve another by more than one task's worth;
* **dependency safety** — ``next_task`` never dispatches a task whose
  dependency keys are unpublished, under *any* interleaving of
  dispatch and completion (this is what makes B pictures decodable:
  their GOP's references are always in the pool first);
* **admission monotonicity** — raising the capacity never turns an
  admitted/queued session into a rejected one;
* **droppability** — ``drop_b_tasks`` only ever sheds ``kind="b"``
  tasks (never a reference picture), and ``skip_next_gop`` only sheds
  whole unstarted GOPs;
* **conservation** — every submitted task ends exactly one of:
  published, deliberately dropped, or still pending; nothing is
  dispatched twice, nothing vanishes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.scheduler import Admission, Scheduler, ServeTask

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


def session_tasks(sid: str, gops: int, bs_per_gop: list[int]) -> list[ServeTask]:
    """A realistic session task list: per-GOP ref task + B tasks."""
    out: list[ServeTask] = []
    order = 0
    for gop in range(gops):
        ref_key = ("ref", gop)
        ref_orders = (order, order + 1)
        order += 2
        out.append(
            ServeTask(
                session=sid, key=ref_key, kind="ref", gop=gop,
                orders=ref_orders,
            )
        )
        for _ in range(bs_per_gop[gop]):
            out.append(
                ServeTask(
                    session=sid, key=("b", gop, order), kind="b", gop=gop,
                    orders=(order,), deps=(ref_key,),
                )
            )
            order += 1
    return out


@st.composite
def scheduler_workload(draw, max_sessions=4, max_gops=3):
    """(tasks-per-session, weights) for a random multi-session load."""
    n = draw(st.integers(1, max_sessions))
    sessions = {}
    weights = {}
    for i in range(n):
        sid = f"s{i}"
        gops = draw(st.integers(1, max_gops))
        bs = [draw(st.integers(0, 3)) for _ in range(gops)]
        sessions[sid] = session_tasks(sid, gops, bs)
        weights[sid] = draw(
            st.floats(0.25, 4.0, allow_nan=False, allow_infinity=False)
        )
    return sessions, weights


# ----------------------------------------------------------------------
# fair share
# ----------------------------------------------------------------------


class TestFairShare:
    @given(scheduler_workload(), st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_vtime_spread_bounded_while_backlogged(self, workload, rng):
        """Spread of served/weight <= max(work/weight) among backlogged."""
        sessions, weights = workload
        sched = Scheduler(capacity=len(sessions), max_inflight=1)
        for sid, tasks in sessions.items():
            sched.submit(sid, tasks, weight=weights[sid])
        bound = max(
            t.work / weights[t.session]
            for tasks in sessions.values()
            for t in tasks
        )
        while True:
            task = sched.next_task()
            if task is None:
                break
            # Complete immediately (max_inflight=1 keeps lanes always
            # dispatchable until empty -> continuously backlogged).
            sched.complete(task)
            backlogged = [
                sid for sid in sessions if sched.pending_count(sid) > 0
            ]
            served = [
                sched.vtime(sid) for sid in backlogged
                if sched.served_work(sid) > 0
            ]
            if len(served) >= 2:
                assert max(served) - min(served) <= bound + 1e-9

    @given(scheduler_workload())
    @settings(max_examples=100, deadline=None)
    def test_heavier_weight_serves_no_less_work(self, workload):
        """With identical task lists, weight order == served-work order."""
        sessions, weights = workload
        # Give every session the same (largest) task list so the only
        # asymmetry is the weight.
        canonical = max(sessions.values(), key=len)
        sched = Scheduler(capacity=len(sessions), max_inflight=1)
        for sid in sessions:
            tasks = [
                ServeTask(
                    session=sid, key=t.key, kind=t.kind, gop=t.gop,
                    orders=t.orders, deps=t.deps,
                )
                for t in canonical
            ]
            sched.submit(sid, tasks, weight=weights[sid])
        total = len(canonical) * len(sessions)
        # Serve only half the work: backlog still exists everywhere.
        for _ in range(total // 2):
            task = sched.next_task()
            if task is None:
                break
            sched.complete(task)
        bound = max(t.work for t in canonical)
        sids = sorted(sessions, key=lambda s: weights[s])
        for lo, hi in zip(sids, sids[1:]):
            if sched.pending_count(lo) and sched.pending_count(hi):
                # vtime spread <= max(work/weight) implies the heavier
                # backlogged session's absolute served work trails the
                # lighter's by at most one task's worth scaled by its
                # weight.
                slack = bound * max(1.0, weights[hi] / weights[lo])
                assert (
                    sched.served_work(hi) >= sched.served_work(lo) - slack - 1e-9
                )


# ----------------------------------------------------------------------
# dependency safety under arbitrary interleavings
# ----------------------------------------------------------------------


class TestDependencySafety:
    @given(scheduler_workload(), st.data())
    @settings(max_examples=200, deadline=None)
    def test_never_dispatches_before_refs_published(self, workload, data):
        sessions, weights = workload
        sched = Scheduler(capacity=len(sessions), max_inflight=2)
        published: dict[str, set] = {sid: set() for sid in sessions}
        inflight: list[ServeTask] = []
        for sid, tasks in sessions.items():
            sched.submit(sid, tasks, weight=weights[sid])
        steps = data.draw(st.integers(10, 120))
        for _ in range(steps):
            do_dispatch = data.draw(st.booleans()) or not inflight
            if do_dispatch:
                task = sched.next_task()
                if task is None:
                    if not inflight:
                        break
                else:
                    # THE property: deps published at dispatch time.
                    for dep in task.deps:
                        assert dep in published[task.session], (
                            f"{task.key} dispatched before {dep} published"
                        )
                    inflight.append(task)
                    continue
            if inflight:
                idx = data.draw(st.integers(0, len(inflight) - 1))
                task = inflight.pop(idx)
                sched.complete(task)
                published[task.session].add(task.key)
        # Drain: everything remaining must still obey the rule.
        while True:
            task = sched.next_task()
            if task is None and not inflight:
                break
            if task is None:
                task = inflight.pop()
                sched.complete(task)
                published[task.session].add(task.key)
                continue
            for dep in task.deps:
                assert dep in published[task.session]
            sched.complete(task)
            published[task.session].add(task.key)

    @given(scheduler_workload())
    @settings(max_examples=100, deadline=None)
    def test_max_inflight_respected(self, workload):
        sessions, weights = workload
        sched = Scheduler(capacity=len(sessions), max_inflight=2)
        for sid, tasks in sessions.items():
            sched.submit(sid, tasks, weight=weights[sid])
        # Dispatch without completing: per-session in-flight stays <= 2.
        while sched.next_task() is not None:
            pass
        for sid in sessions:
            assert sched.inflight_count(sid) <= 2


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------


class TestAdmissionMonotonicity:
    @given(
        st.integers(1, 6),
        st.integers(0, 3),
        st.integers(1, 12),
    )
    @settings(max_examples=200, deadline=None)
    def test_raising_capacity_never_rejects_more(
        self, capacity, max_queue, submissions
    ):
        def verdicts(cap: int) -> list[Admission]:
            sched = Scheduler(capacity=cap, max_queue=max_queue)
            out = []
            for i in range(submissions):
                out.append(
                    sched.submit(f"s{i}", session_tasks(f"s{i}", 1, [0]))
                )
            return out

        rank = {
            Admission.ADMITTED: 2, Admission.QUEUED: 1, Admission.REJECTED: 0
        }
        lo = verdicts(capacity)
        hi = verdicts(capacity + 1)
        for a, b in zip(lo, hi):
            assert rank[b] >= rank[a], (
                f"capacity {capacity}->{capacity + 1} demoted {a} to {b}"
            )

    @given(st.integers(1, 4), st.integers(0, 3), st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_admission_counts_exact(self, capacity, max_queue, submissions):
        sched = Scheduler(capacity=capacity, max_queue=max_queue)
        verdicts = [
            sched.submit(f"s{i}", session_tasks(f"s{i}", 1, [0]))
            for i in range(submissions)
        ]
        admitted = sum(1 for v in verdicts if v is Admission.ADMITTED)
        queued = sum(1 for v in verdicts if v is Admission.QUEUED)
        assert admitted == min(capacity, submissions)
        assert queued == min(max_queue, max(0, submissions - capacity))


# ----------------------------------------------------------------------
# degradation hooks
# ----------------------------------------------------------------------


class TestDroppability:
    @given(scheduler_workload(), st.data())
    @settings(max_examples=200, deadline=None)
    def test_drop_b_never_sheds_a_reference(self, workload, data):
        sessions, weights = workload
        sched = Scheduler(capacity=len(sessions), max_inflight=2)
        for sid, tasks in sessions.items():
            sched.submit(sid, tasks, weight=weights[sid])
        # Random progress first.
        for _ in range(data.draw(st.integers(0, 10))):
            task = sched.next_task()
            if task is None:
                break
            sched.complete(task)
        sid = data.draw(st.sampled_from(sorted(sessions)))
        gop_limit = data.draw(st.one_of(st.none(), st.integers(1, 3)))
        dropped = sched.drop_b_tasks(sid, gops=gop_limit)
        assert all(t.kind == "b" for t in dropped)
        assert all(t.is_droppable for t in dropped)
        # Reference tasks are untouched: after draining, every one of
        # the session's ref tasks was dispatched exactly once.
        ref_total = sum(1 for t in sessions[sid] if t.kind == "ref")
        refs_seen = set()
        while True:
            task = sched.next_task()
            if task is None:
                break
            sched.complete(task)
            if task.session == sid and task.kind == "ref":
                refs_seen.add(task.key)
        # Refs dispatched during the warm-up phase completed there too;
        # count them from the published diagnostics instead: pending
        # must now be empty and no ref was ever in the dropped list.
        assert sched.pending_count(sid) == 0
        assert len(refs_seen) <= ref_total
        assert not any(t.kind == "ref" for t in dropped)

    @given(scheduler_workload(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_skip_gop_only_sheds_unstarted_gops(self, workload, data):
        sessions, weights = workload
        sched = Scheduler(capacity=len(sessions), max_inflight=2)
        for sid, tasks in sessions.items():
            sched.submit(sid, tasks, weight=weights[sid])
        inflight = []
        for _ in range(data.draw(st.integers(0, 8))):
            task = sched.next_task()
            if task is None:
                break
            inflight.append(task)
            if data.draw(st.booleans()):
                sched.complete(inflight.pop())
        sid = data.draw(st.sampled_from(sorted(sessions)))
        started = {
            t.gop for t in inflight if t.session == sid
        }
        dropped = sched.skip_next_gop(sid)
        if dropped:
            gops = {t.gop for t in dropped}
            assert len(gops) == 1, "skip_next_gop shed more than one GOP"
            assert not (gops & started), "skipped a GOP with work in flight"

    @given(scheduler_workload(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_task_conservation(self, workload, data):
        """published + dropped + pending == submitted; no double serve."""
        sessions, weights = workload
        sched = Scheduler(capacity=len(sessions), max_inflight=2)
        for sid, tasks in sessions.items():
            sched.submit(sid, tasks, weight=weights[sid])
        seen: set[tuple[str, tuple]] = set()
        dropped_total = {sid: 0 for sid in sessions}
        inflight: list[ServeTask] = []
        for _ in range(data.draw(st.integers(5, 80))):
            op = data.draw(st.integers(0, 3))
            if op == 0:
                task = sched.next_task()
                if task is not None:
                    key = (task.session, task.key)
                    assert key not in seen, "task dispatched twice"
                    seen.add(key)
                    inflight.append(task)
            elif op == 1 and inflight:
                sched.complete(inflight.pop(data.draw(
                    st.integers(0, len(inflight) - 1)
                )))
            elif op == 2:
                sid = data.draw(st.sampled_from(sorted(sessions)))
                dropped_total[sid] += len(sched.drop_b_tasks(sid, gops=1))
            else:
                sid = data.draw(st.sampled_from(sorted(sessions)))
                dropped_total[sid] += len(sched.skip_next_gop(sid))
        for sid in sessions:
            dispatched = sum(1 for s, _ in seen if s == sid)
            total = len(sessions[sid])
            assert (
                dispatched + dropped_total[sid] + sched.pending_count(sid)
                == total
            )
