"""The multi-stream decode service: N sessions, one worker pool.

:class:`DecodeService` multiplexes every submitted
:class:`~repro.serve.session.StreamSession` onto one shared pool of
persistent decode worker processes (the paper's scan/workers/display
triangle, lifted one level: *many* scans, one worker pool, many
display reorder buffers).

Execution model
---------------
* Each worker process owns a private task queue; the parent assigns
  exactly one task at a time per worker, so it always knows which
  worker holds which task — the basis for dead-worker retry and
  per-task timeouts.
* Tasks come from the weighted-fair
  :class:`~repro.serve.scheduler.Scheduler`; a task is a GOP's
  reference pictures or a single B picture
  (:class:`~repro.serve.scheduler.ServeTask`), decoded straight into
  the session's shared-memory frame pool via
  :func:`repro.parallel.mp_slice.decode_picture_into_pool`.
* Robustness: result waits are chunked into
  :data:`~repro.parallel.mp.LIVENESS_POLL_S` polls (the PR-4 liveness
  machinery).  A worker that dies (or exceeds ``task_timeout_s``) has
  its task requeued with the dead worker recorded in the task's
  ``excluded`` set and a replacement worker spawned; a task that
  exhausts ``max_task_retries`` fails *its session only*.  A stream
  whose bytes are poison (scan failure, slice corruption in strict
  mode, any worker-side exception) likewise fails only its own
  session — the service never crashes and never leaks ``/dev/shm``
  segments.
* Overload degradation: when a paced session misses deadlines, its
  :class:`~repro.serve.degrade.DegradeState` sheds pending B-picture
  tasks first, then whole unstarted GOPs, recorded under the
  ``degrade.*`` stall reasons and counters.

``workers=0`` runs the identical scheduler/merge/degrade pipeline
in-process on :class:`~repro.parallel.mp.LocalFramePool` buffers (no
processes, no shared memory) — the deterministic CI path the fuzz
suite leans on.
"""

from __future__ import annotations

import glob
import json
import multiprocessing
import os
import queue as queue_mod
import shutil
import tempfile
import threading
import time
from typing import Callable

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import DecodeError
from repro.mpeg2.frame import Frame
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import metrics, reset_metrics
from repro.obs.slo import SLOPolicy
from repro.obs.stalls import (
    REASON_ADMISSION,
    REASON_DEGRADE_DROP_B,
    REASON_DEGRADE_SKIP_GOP,
    REASON_DEGRADE_SWITCH_RUNG,
    REASON_QUEUE_GET,
    StallTable,
)
from repro.obs.trace import (
    enable_tracing,
    get_tracer,
    trace_complete,
    trace_span,
    tracing_enabled,
)
from repro.exec.backend import (
    LIVENESS_POLL_S,
    close_queues,
    collect_trace_shards,
    reap_processes,
    release_segments,
    timed_queue_get,
)
from repro.exec.shm import LocalFramePool, SharedFramePool, StreamArena
from repro.parallel.mp_slice import decode_picture_into_pool
from repro.serve.degrade import (
    ACTION_DROP_B,
    ACTION_SKIP_GOP,
    ACTION_SWITCH_RUNG,
    DegradePolicy,
)
from repro.serve.scheduler import (
    Admission,
    Scheduler,
    ServeTask,
    estimate_capacity,
)
from repro.serve.session import SessionStatus, StreamSession

#: Exit code the fault-injection hook uses (mirrors the mp decoders).
_CRASH_EXIT = 23

#: How long the shutdown path waits for each worker's final
#: observability message before giving up and terminating it.
_SHUTDOWN_GRACE_S = 5.0


def _exc_payload(exc: BaseException) -> tuple[str, str]:
    return type(exc).__name__, str(exc)


# ======================================================================
# worker side
# ======================================================================
def _write_metrics_shard(path: str) -> None:
    """Persist this process's metrics snapshot (atomic replace).

    Mirrors the trace-shard protocol: workers overwrite their own
    ``metrics-<pid>.json`` after every task, so whatever a worker had
    recorded survives even if it is later killed mid-task; the parent
    merges all shards at shutdown (``os.replace`` keeps a concurrent
    kill from ever exposing a torn file).
    """
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(metrics().snapshot(), fh)
    os.replace(tmp, path)


def _serve_worker_main(
    wid: int,
    meta: dict,
    task_q,
    result_q,
    trace_dir: str | None,
    obs_dir: str | None,
    crash_task: tuple | None,
    hang_task: tuple | None,
) -> None:
    """Worker body: loop ``(session, task)`` assignments until sentinel.

    ``meta`` maps session id -> the immutable decode context (picture
    plans, sequence header, frame-pool + bitstream-arena names).  The
    coded bytes live in per-session
    :class:`~repro.parallel.mp.StreamArena` segments published once by
    the parent — workers attach and parse in place, so the bitstream
    never rides the ``fork``/pickle path per worker.  Results are tiny
    ``(kind, wid, sid, key, payload...)`` tuples — pixels never cross
    the process boundary; they land in the session's shared pool.
    """
    name = f"serve-worker-{wid}"
    pid = os.getpid()
    # Under fork the child inherits the parent's already-populated
    # registry; counting from zero keeps shard merges from double-
    # counting the parent's totals.
    reset_metrics()
    metrics_shard = (
        os.path.join(obs_dir, f"metrics-{pid}.json")
        if obs_dir is not None
        else None
    )
    shard = (
        os.path.join(trace_dir, f"shard-{pid}.jsonl")
        if trace_dir is not None
        else None
    )
    if trace_dir is not None:
        enable_tracing(process_name=name)
        tracer = get_tracer()
        if tracer is not None:
            tracer.instant("serve.worker.start", cat="serve")
            tracer.write_shard(shard)
    pools = {
        sid: SharedFramePool(m["layout"], slots=0, name=m["pool_name"])
        for sid, m in meta.items()
    }
    arenas = {
        sid: StreamArena(name=m["arena_name"], size=m["arena_size"])
        for sid, m in meta.items()
    }
    stalls = StallTable()
    last_end = time.monotonic_ns()
    try:
        while True:
            msg = task_q.get()
            if msg is None:
                break
            if msg[0] == "__meta__":
                # Dynamic admission: attach the new session's segments.
                _, new_sid, m = msg
                meta[new_sid] = m
                pools[new_sid] = SharedFramePool(
                    m["layout"], slots=0, name=m["pool_name"]
                )
                arenas[new_sid] = StreamArena(
                    name=m["arena_name"], size=m["arena_size"]
                )
                continue
            sid, key, orders = msg
            now = time.monotonic_ns()
            if now > last_end:
                stalls.record(name, REASON_QUEUE_GET, (now - last_end) / 1e9)
            if crash_task is not None and crash_task == (wid, sid, key):
                # Fault injection (tests only): die the way an OOM kill
                # would — no result, no cleanup, nonzero exit code.
                # Keyed on (wid, sid, key) so the replacement worker that
                # retries the task does NOT crash again.
                os._exit(_CRASH_EXIT)
            if hang_task is not None and hang_task == (wid, sid, key):
                # Fault injection (tests only): wedge forever — the
                # per-task timeout must reap us.
                while True:  # pragma: no cover - killed by the parent
                    time.sleep(60.0)
            m = meta[sid]
            counters = WorkCounters()
            task_t0 = time.perf_counter()
            try:
                with trace_span(
                    "serve.task", cat="serve",
                    session=sid, key=str(key), pictures=len(orders),
                ):
                    for order in orders:
                        decode_picture_into_pool(
                            arenas[sid].view,
                            m["plans"][order],
                            m["seq"],
                            m["mb_width"],
                            m["mb_height"],
                            pools[sid],
                            m["resilient"],
                            counters,
                        )
                metrics().counter("serve.worker.pictures").inc(len(orders))
                result_q.put(("ok", wid, sid, key, counters))
            except BaseException as exc:  # containment: report, carry on
                cls, msg_text = _exc_payload(exc)
                metrics().counter("serve.worker.task_errors").inc()
                result_q.put(("err", wid, sid, key, cls, msg_text))
            metrics().counter("serve.worker.tasks").inc()
            metrics().histogram("serve.worker.task_ms").observe(
                (time.perf_counter() - task_t0) * 1e3
            )
            if metrics_shard is not None:
                _write_metrics_shard(metrics_shard)
            tracer = get_tracer()
            if tracer is not None and shard is not None:
                tracer.write_shard(shard)
            last_end = time.monotonic_ns()
        result_q.put(("obs", wid, None, stalls.snapshot()))
        if metrics_shard is not None:
            _write_metrics_shard(metrics_shard)
        tracer = get_tracer()
        if tracer is not None and shard is not None:
            tracer.instant("serve.worker.stop", cat="serve")
            tracer.write_shard(shard)
    finally:
        for seg in list(pools.values()) + list(arenas.values()):
            try:
                seg.close()
            except BufferError:  # pragma: no cover - defensive
                pass


# ======================================================================
# the service
# ======================================================================
class DecodeService:
    """Admission-controlled multi-stream decoder on a shared pool.

    Parameters
    ----------
    workers:
        Worker processes shared by every session (``0`` = in-process,
        deterministic; ``None`` = CPU count).
    fps:
        Per-session display deadline rate (``None`` disables pacing
        and, with it, overload degradation).
    capacity:
        Max concurrently active sessions; default derives from the
        committed ``BENCH_parallel.json`` via
        :func:`~repro.serve.scheduler.estimate_capacity`.
    max_queue:
        Admission queue depth beyond the capacity (0 = reject
        immediately).
    max_inflight:
        Per-session in-flight task bound (backpressure).
    task_timeout_s:
        Wall-clock budget per task; a worker exceeding it is presumed
        wedged, killed, and the task retried elsewhere.
    max_task_retries:
        How many *distinct* workers may die/time out on one task
        before its session is failed.
    policy:
        Degradation thresholds (:class:`~repro.serve.degrade.
        DegradePolicy`).
    clock:
        Monotonic-seconds source (injectable for deterministic
        degradation tests).
    """

    def __init__(
        self,
        workers: int | None = None,
        fps: float | None = None,
        capacity: int | None = None,
        max_queue: int = 0,
        max_inflight: int = 2,
        resilient: bool = False,
        start_method: str | None = None,
        task_timeout_s: float = 60.0,
        max_task_retries: int = 1,
        policy: DegradePolicy | None = None,
        preroll_pictures: int = 0,
        clock: Callable[[], float] = time.monotonic,
        bench_path: str | None = None,
        slo_policy: SLOPolicy | None = None,
        flight_dir: str | None = None,
        grain: str | None = None,
        engine: str | None = None,
        _crash_task: tuple | None = None,  # (wid, sid, key) test hook
        _hang_task: tuple | None = None,   # (wid, sid, key) test hook
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be > 0")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if grain not in (None, "auto", "gop", "slice"):
            raise ValueError(
                f"unknown grain {grain!r}; expected auto, gop or slice"
            )
        if engine not in (None, "auto", "scalar", "batched"):
            raise ValueError(
                f"unknown engine {engine!r}; expected auto, scalar or batched"
            )
        #: Task-decomposition grain: ``None`` keeps the legacy fine
        #: decomposition (per-GOP ref task + per-B tasks); ``"gop"``
        #: one coarse task per GOP; ``"slice"`` the fine decomposition
        #: explicitly; ``"auto"`` a per-session AutoGranularity
        #: decision at submit time (traced as ``exec.plan``).
        self.grain = grain
        #: Cost-model engine hint for auto decisions (the serve worker
        #: decode path is the batched two-phase machinery either way).
        self.engine = engine
        self.workers = workers
        self.fps = fps
        self.capacity = (
            capacity
            if capacity is not None
            else estimate_capacity(workers, fps, bench_path)
        )
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        self.resilient = resilient
        self.start_method = start_method
        self.task_timeout_s = task_timeout_s
        self.max_task_retries = max_task_retries
        self.policy = policy or DegradePolicy()
        self.preroll_pictures = preroll_pictures
        self.clock = clock
        self.slo_policy = slo_policy
        #: Always-on bounded per-session event rings; ``flight_dir``
        #: additionally enables automatic JSON dumps on fail/cancel/
        #: SLO-burnout (paths collected in :attr:`flight_dumps`).
        self.flight = FlightRecorder()
        self.flight_dir = flight_dir
        self.flight_dumps: list[str] = []
        #: Per-worker metrics snapshots merged at shutdown
        #: (``[{"pid": ..., "metrics": ...}]``); empty for workers=0.
        self.last_worker_metrics: list[dict] = []
        self._crash_task = _crash_task
        self._hang_task = _hang_task

        self.scheduler = Scheduler(
            capacity=self.capacity,
            max_queue=max_queue,
            max_inflight=max_inflight,
        )
        self.sessions: dict[str, StreamSession] = {}
        self._sinks: dict[str, Callable[[int, Frame | None], None]] = {}
        self._tasks_by_key: dict[tuple[str, tuple], ServeTask] = {}
        #: (session, task key) -> worker ids that died/timed out on it.
        self.excluded: dict[tuple[str, tuple], set[int]] = {}
        self.last_stalls = StallTable()
        self.last_wall_seconds = 0.0
        self.last_pool_bytes = 0
        self._ran = False
        # -- dynamic-serving control plane (run_forever) ---------------
        # Other threads talk to the run loop exclusively through these,
        # under one lock; the loop drains them at loop-safe points.
        self._control_lock = threading.Lock()
        self._cancel_requests: list[str] = []
        self._intake: list[tuple] = []
        self._stop = False
        self._drain = False
        self._dynamic = False
        self._stopping = False
        #: Set by the active runner: creates the frame pool (and, for
        #: the mp path, arena + worker meta broadcast) for a session
        #: admitted mid-run.
        self._add_pool: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # submission / admission
    # ------------------------------------------------------------------
    def _task_grain(self, sess: StreamSession) -> str:
        """Resolve this service's grain setting for one session.

        ``"auto"`` asks the :class:`~repro.exec.auto.AutoGranularity`
        controller, feeding it the session's bandwidth profile; a GOP
        pick maps to the coarse one-task-per-GOP decomposition, a
        slice pick to the fine ref+B decomposition.  The decision is
        traced as an ``exec.plan`` span (chosen grain/engine plus the
        rejected alternative's estimated cost) and counted in the
        ``exec.plan.*`` metrics, exactly like the executor's.
        """
        if self.grain is None or self.grain == "slice":
            return "fine"
        if self.grain == "gop":
            return "coarse"
        from repro.analysis.bandwidth import profile_stream
        from repro.exec.auto import AutoGranularity
        from repro.exec.executor import _trace_decision

        profile = profile_stream(sess.data, index=sess.index)
        controller = AutoGranularity(
            profile=profile,
            workers=self.workers,
            engine_hint=(
                self.engine if self.engine not in (None, "auto") else None
            ),
        )
        decision = controller.decide()
        _trace_decision(decision, window=0, gop=0)
        self.flight.record(
            sess.name, "exec.plan",
            grain=decision.grain, engine=decision.engine,
            reason=decision.reason,
        )
        return "coarse" if decision.grain == "gop" else "fine"

    def submit(
        self,
        name: str,
        data: bytes,
        weight: float = 1.0,
        resilient: bool | None = None,
        on_frame: Callable[[int, Frame | None], None] | None = None,
        start_gop: int = 0,
        rungs: list[bytes] | None = None,
    ) -> StreamSession:
        """Offer one stream to the service (before :meth:`run`).

        Scan failures are *contained*: the returned session is FAILED
        and the service keeps going.  Admission control may QUEUE or
        REJECT the session; both are visible on ``session.status``.
        ``on_frame(display_index, frame_or_None)`` receives every
        display-ordered emission (``None`` = picture shed by
        degradation); omit it to skip pixel reads entirely.
        ``start_gop`` admits the session mid-stream at the next closed
        GOP at/after that GOP number (exact join — see
        :class:`StreamSession`); ``rungs`` attaches an ABR ladder of
        cheaper encodings the ``switch_rung`` degrade action may
        downshift to.
        """
        if self._ran:
            raise RuntimeError("submit() after run() is not supported")
        return self._submit_impl(
            name, data, weight, resilient, on_frame,
            start_gop=start_gop, rungs=rungs,
        )

    def _submit_impl(
        self,
        name: str,
        data: bytes,
        weight: float = 1.0,
        resilient: bool | None = None,
        on_frame: Callable[[int, Frame | None], None] | None = None,
        start_gop: int = 0,
        rungs: list[bytes] | None = None,
        rung_level: int = 0,
    ) -> StreamSession:
        if name in self.sessions:
            raise ValueError(f"duplicate session name {name!r}")
        if name.startswith("__"):
            # "__meta__"-style names are worker-protocol control tags.
            raise ValueError(f"reserved session name {name!r}")
        resilient = self.resilient if resilient is None else resilient
        try:
            sess = StreamSession(
                name,
                data,
                weight=weight,
                resilient=resilient,
                fps=self.fps,
                preroll_pictures=self.preroll_pictures,
                policy=self.policy,
                slo_policy=self.slo_policy,
                start_gop=start_gop,
                rungs=rungs,
                rung_level=rung_level,
            )
        except Exception as exc:
            # Corrupt-input containment, scan stage: the poison stream
            # fails alone; the service (and its other sessions) carry on.
            sess = StreamSession.failed(name, exc)
            self.sessions[name] = sess
            metrics().counter("serve.sessions.failed_scan").inc()
            self.flight.record(
                name, "scan.failed",
                error=f"{type(exc).__name__}: {exc}",
            )
            self.flight_dump(name, "scan-failed")
            return sess
        if sess.join_gop:
            self.flight.record(
                name, "joined",
                gop=sess.join_gop, display_base=sess.join_display_base,
            )
            metrics().counter("serve.sessions.joined").inc()
        tasks = sess.tasks(grain=self._task_grain(sess))
        verdict = self.scheduler.submit(name, tasks, weight=weight)
        if verdict is Admission.ADMITTED:
            sess.status = SessionStatus.ACTIVE
            sess.admitted_at = self.clock()
            self.flight.record(name, "admitted", tasks=len(tasks))
        elif verdict is Admission.QUEUED:
            sess.status = SessionStatus.QUEUED
            sess.queued_at = self.clock()
            self.flight.record(name, "queued")
        else:
            sess.status = SessionStatus.REJECTED
            metrics().counter("serve.sessions.rejected").inc()
            self.flight.record(name, "rejected")
        for t in tasks:
            self._tasks_by_key[(name, t.key)] = t
        self.sessions[name] = sess
        if on_frame is not None:
            self._sinks[name] = on_frame
        return sess

    # ------------------------------------------------------------------
    # dynamic control plane (thread-safe; the net server's interface)
    # ------------------------------------------------------------------
    def submit_dynamic(
        self,
        name: str,
        data: bytes,
        weight: float = 1.0,
        resilient: bool | None = None,
        on_frame: Callable[[int, Frame | None], None] | None = None,
        timeout_s: float = 30.0,
        start_gop: int = 0,
        rungs: list[bytes] | None = None,
    ) -> StreamSession:
        """Offer a stream to a service running under :meth:`run_forever`.

        Callable from any thread.  Blocks until the run loop has taken
        the session through scan + admission (microseconds-to-
        milliseconds) and returns the session with its verdict on
        ``status``, exactly like :meth:`submit` before a static run.
        ``start_gop`` requests a mid-stream join (see :meth:`submit`).
        """
        if not self._dynamic:
            raise RuntimeError(
                "submit_dynamic() requires a run_forever() service"
            )
        done = threading.Event()
        box: dict = {}
        with self._control_lock:
            self._intake.append((name, data, weight, resilient, on_frame,
                                 start_gop, rungs, done, box))
        if not done.wait(timeout_s):
            raise TimeoutError(
                f"service did not process submission {name!r} "
                f"within {timeout_s}s"
            )
        result = box["session"]
        if isinstance(result, BaseException):
            raise result
        return result

    def request_cancel(self, name: str) -> None:
        """Ask the run loop to cancel a session (thread-safe).

        The client-went-away path: at the next loop-safe point the
        session flips to CANCELLED, its unstarted tasks leave the
        scheduler, and any result a worker is still computing for it is
        discarded on arrival — the shared worker pool is never poisoned
        by a mid-GOP disconnect.  Unknown or already-terminal names are
        ignored (a disconnect can race normal completion).
        """
        with self._control_lock:
            self._cancel_requests.append(name)

    def shutdown(self, drain: bool = False) -> None:
        """Ask :meth:`run_forever` to return (thread-safe).

        ``drain=True`` finishes in-flight sessions first; the default
        cancels every non-terminal session (service teardown).
        """
        with self._control_lock:
            self._stop = True
            self._drain = drain

    def flight_dump(self, sid: str, reason: str) -> str | None:
        """Dump a session's flight ring (no-op without ``flight_dir``)."""
        if self.flight_dir is None:
            return None
        path = self.flight.dump_to(self.flight_dir, sid, reason)
        self.flight_dumps.append(path)
        metrics().counter("obs.flight.dumps").inc()
        return path

    def _cancel_session(self, sid: str) -> None:
        sess = self.sessions.get(sid)
        if sess is None or sess.terminal:
            return
        sess.status = SessionStatus.CANCELLED
        metrics().counter("serve.sessions.cancelled").inc()
        self.flight.record(sid, "cancelled")
        self.flight_dump(sid, "cancelled")
        self._promote(self.scheduler.finish_session(sid))

    def _process_intake(self) -> None:
        with self._control_lock:
            batch, self._intake = self._intake, []
        for (name, data, weight, resilient, on_frame,
             start_gop, rungs, done, box) in batch:
            try:
                if self._stopping:
                    raise RuntimeError("service is shutting down")
                sess = self._submit_impl(
                    name, data, weight=weight, resilient=resilient,
                    on_frame=on_frame, start_gop=start_gop, rungs=rungs,
                )
                if not sess.terminal:
                    self._add_pool(sess.name)
                box["session"] = sess
            except BaseException as exc:
                box["session"] = exc
            finally:
                done.set()

    def _apply_control(self) -> None:
        """One loop-safe point: cancels, intake, then shutdown."""
        with self._control_lock:
            cancels, self._cancel_requests = self._cancel_requests, []
            stop, drain = self._stop, self._drain
        for sid in cancels:
            self._cancel_session(sid)
        if self._dynamic:
            if stop and not self._stopping:
                self._stopping = True
                if not drain:
                    for sid in self._nonterminal():
                        self._cancel_session(sid)
            self._process_intake()

    def _drain_control(self) -> None:
        """Post-run: unblock any submitter that raced the shutdown."""
        with self._control_lock:
            batch, self._intake = self._intake, []
            self._cancel_requests = []
        for item in batch:
            done, box = item[-2], item[-1]
            box["session"] = RuntimeError("service stopped")
            done.set()

    def _should_exit(self) -> bool:
        if self._dynamic:
            return self._stopping and not self._nonterminal()
        return not self._nonterminal()

    # ------------------------------------------------------------------
    # shared result handling (mp and in-process paths)
    # ------------------------------------------------------------------
    def _emit(self, sess: StreamSession, ready: list[tuple[int, bool]], pool) -> None:
        """Emit a display-ordered run: pace, degrade, sink."""
        sink = self._sinks.get(sess.name)
        for order, dropped in ready:
            display_index = sess.plans[order].display_index
            if dropped:
                if order in sess.switched_orders:
                    # Not shed: this picture's decode moved to the rung
                    # continuation session, which emits it there.  The
                    # marker only exists to let this session's display
                    # merger run to completion.
                    sess.switched_pictures += 1
                    metrics().counter("serve.pictures.switched").inc()
                    continue
                sess.dropped_pictures += 1
                metrics().counter("serve.pictures.dropped").inc()
                self.flight.record(
                    sess.name, "picture.dropped", pic=display_index
                )
                if sess.slo is not None:
                    sess.slo.observe(shed=True)
                if sink is not None:
                    sink(display_index, None)
                continue
            late_s = sess.pacer.on_emit(display_index, now=self.clock())
            sess.emitted_pictures += 1
            metrics().counter("serve.pictures.emitted").inc()
            if sink is not None:
                frame = pool.read_frame(
                    order, sess.plans[order].header.temporal_reference
                )
                sink(display_index, frame)
            if sess.pacer.enabled:
                if late_s > 0:
                    metrics().counter("serve.deadline.missed").inc()
                    metrics().histogram("serve.deadline.lateness_ms").observe(
                        late_s * 1e3
                    )
                    self.flight.record(
                        sess.name, "deadline.miss",
                        pic=display_index, late_ms=late_s * 1e3,
                    )
                if sess.slo is not None:
                    sess.slo.observe(late_s=late_s)
                    if sess.slo.burned_out and not sess.slo_dumped:
                        sess.slo_dumped = True
                        self.flight.record(
                            sess.name, "slo.burnout",
                            breaches=sess.slo.breaches(),
                            burn_rate=sess.slo.burn_rate,
                        )
                        self.flight_dump(sess.name, "slo-burnout")
                action = sess.degrade.on_emit(late_s > 0)
                if action is not None:
                    self._apply_degrade(sess, action, late_s)

    def _apply_degrade(
        self, sess: StreamSession, action: str, debt_s: float
    ) -> None:
        """Shed work for an overloaded session; account it in obs."""
        if action == ACTION_SWITCH_RUNG:
            self._switch_rung(sess, debt_s)
            return
        if action == ACTION_DROP_B:
            dropped = self.scheduler.drop_b_tasks(
                sess.name, gops=self.policy.drop_b_gops
            )
            reason = REASON_DEGRADE_DROP_B
            sess.dropped_b_tasks += len(dropped)
            metrics().counter("serve.degrade.drop_b_tasks").inc(len(dropped))
        elif action == ACTION_SKIP_GOP:
            dropped = self.scheduler.skip_next_gop(sess.name)
            reason = REASON_DEGRADE_SKIP_GOP
            if dropped:
                sess.skipped_gops += 1
                metrics().counter("serve.degrade.skipped_gops").inc()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown degrade action {action!r}")
        if not dropped:
            return
        # Degradation never sheds a reference picture via drop-B; the
        # scheduler enforces it, this asserts it (cheap and load-bearing
        # for the fuzz suite's invariants).
        if action == ACTION_DROP_B:
            assert all(t.kind == "b" for t in dropped)
        self.flight.record(
            sess.name, "degrade", action=reason, tasks=len(dropped),
            debt_ms=max(debt_s, 0.0) * 1e3,
        )
        self.last_stalls.record(sess.name, reason, max(debt_s, 0.0))
        trace_complete(
            "serve.degrade", "stall",
            time.monotonic_ns(), int(max(debt_s, 0.0) * 1e9),
            session=sess.name, reason=reason, tasks=len(dropped),
        )
        orders = tuple(o for t in dropped for o in t.orders)
        # Drop markers flow through the same display merger, so the
        # reorder buffer can release runs blocked behind shed pictures.
        ready = sess.push_dropped(orders)
        self._emit(sess, ready, self._pools[sess.name])

    def _switch_rung(self, sess: StreamSession, debt_s: float) -> None:
        """Downshift an overloaded session to its next ABR rung.

        The scheduler cancels everything from the earliest GOP with no
        started work, and that tail is resubmitted as a *continuation
        session* decoding the next rung of the session's ladder,
        joining mid-stream at the cut GOP (the tentpole join path —
        closed GOPs make the hand-off exact at a picture boundary).
        Unlike ``drop_b``/``skip_gop``, no picture is shed: every cut
        picture is emitted by the continuation, at lower resolution
        and a fraction of the decode cost.  No-op when the session has
        no ladder, no clean cut exists, or the service cannot admit
        the continuation.
        """
        if not sess.rungs or self._add_pool is None:
            return
        cut, dropped = self.scheduler.truncate_from_gop(sess.name)
        if cut is None or not dropped:
            return
        rung_data, remaining = sess.rungs[0], sess.rungs[1:]
        cont_name = f"{sess.name}~rung{sess.rung_level + 1}"
        cont = self._submit_impl(
            cont_name,
            rung_data,
            weight=sess.weight,
            resilient=sess.resilient,
            # ``cut`` is relative to this session's (possibly already
            # joined) tail; the rung ladder always holds full streams.
            start_gop=sess.join_gop + cut,
            rungs=remaining,
            rung_level=sess.rung_level + 1,
        )
        if cont.status is SessionStatus.FAILED or cont.status is SessionStatus.REJECTED:
            # Could not place the continuation; put the tail back so
            # the pictures are decoded at the original rung instead of
            # silently vanishing.
            for t in reversed(dropped):
                self.scheduler._lanes[sess.name].pending.insert(0, t)
            return
        self._add_pool(cont_name)
        sess.continuation = cont_name
        orders = tuple(o for t in dropped for o in t.orders)
        sess.switched_orders.update(orders)
        metrics().counter("serve.degrade.switch_rung").inc()
        self.flight.record(
            sess.name, "degrade", action=REASON_DEGRADE_SWITCH_RUNG,
            cut_gop=cut, pictures=len(orders), continuation=cont_name,
            debt_ms=max(debt_s, 0.0) * 1e3,
        )
        self.last_stalls.record(
            sess.name, REASON_DEGRADE_SWITCH_RUNG, max(debt_s, 0.0)
        )
        trace_complete(
            "serve.degrade", "stall",
            time.monotonic_ns(), int(max(debt_s, 0.0) * 1e9),
            session=sess.name, reason=REASON_DEGRADE_SWITCH_RUNG,
            tasks=len(dropped),
        )
        # Switch markers flow through the display merger so the old
        # session can still finish; _emit routes them to the switched
        # accounting, not the dropped path.
        ready = sess.push_dropped(orders)
        self._emit(sess, ready, self._pools[sess.name])

    def _session_maybe_done(self, sid: str) -> None:
        sess = self.sessions[sid]
        if sess.terminal:
            return
        if self.scheduler.session_idle(sid) and sess.display_done:
            sess.status = SessionStatus.DONE
            metrics().counter("serve.sessions.done").inc()
            # Clean finish: nothing to autopsy, release the ring.
            self.flight.discard(sid)
            self._promote(self.scheduler.finish_session(sid))

    def _fail_session(self, sid: str, error: BaseException | dict) -> None:
        sess = self.sessions[sid]
        if sess.terminal:
            return
        sess.fail(error)
        metrics().counter("serve.sessions.failed").inc()
        self.flight.record(sid, "failed", error=sess.error)
        self.flight_dump(sid, "failed")
        self._promote(self.scheduler.finish_session(sid))

    def _promote(self, promoted: list[str]) -> None:
        now = self.clock()
        for sid in promoted:
            sess = self.sessions[sid]
            sess.status = SessionStatus.ACTIVE
            sess.admitted_at = now
            if sess.queued_at is not None:
                wait = max(0.0, now - sess.queued_at)
                self.last_stalls.record(sid, REASON_ADMISSION, wait)
                metrics().histogram("serve.admission.wait_ms").observe(
                    wait * 1e3
                )

    def _handle_ok(self, sid: str, key: tuple, counters: WorkCounters) -> None:
        sess = self.sessions[sid]
        task = self._tasks_by_key[(sid, key)]
        if sess.terminal:
            return  # late result for an already-failed session
        self.scheduler.complete(task)
        sess.counters.add(counters)
        ready = sess.push_decoded(task.orders)
        self._emit(sess, ready, self._pools[sid])
        self._session_maybe_done(sid)

    def _handle_err(self, sid: str, key: tuple, cls: str, message: str) -> None:
        sess = self.sessions[sid]
        if sess.terminal:
            return
        self._fail_session(sid, {"type": cls, "message": message})

    def _nonterminal(self) -> list[str]:
        return [
            sid for sid, s in self.sessions.items() if not s.terminal
        ]

    def _strand_check(self) -> None:
        """No dispatchable work, nothing in flight: settle stragglers."""
        for sid in self._nonterminal():
            sess = self.sessions[sid]
            if self.scheduler.is_active(sid) and self.scheduler.session_idle(sid):
                if sess.display_done:
                    self._session_maybe_done(sid)
                else:  # pragma: no cover - defensive
                    self._fail_session(
                        sid,
                        {
                            "type": "DecodeError",
                            "message": "session stranded with undecoded "
                            "pictures and no pending tasks",
                        },
                    )

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Drive every submitted session to a terminal state.

        Returns the service report (per-session summaries + service
        aggregates).  Never raises for per-stream failures; only for
        service-level programming errors.
        """
        if self._ran:
            raise RuntimeError("DecodeService.run() may only be called once")
        self._ran = True
        t_run = time.perf_counter()
        try:
            if self.workers == 0:
                self._run_inprocess()
            else:
                self._run_mp()
        finally:
            self.last_wall_seconds = time.perf_counter() - t_run
        return self.report()

    def run_forever(self) -> dict:
        """Serve dynamically-submitted sessions until :meth:`shutdown`.

        Blocking — run it on a dedicated thread and feed it through the
        thread-safe control plane (:meth:`submit_dynamic`,
        :meth:`request_cancel`, :meth:`shutdown`); this is how the
        network front end (:mod:`repro.net.server`) drives the service.
        Sessions submitted with plain :meth:`submit` *before* this call
        are served too.  Returns the service report.
        """
        if self._ran:
            raise RuntimeError("DecodeService may only be run once")
        self._ran = True
        self._dynamic = True
        t_run = time.perf_counter()
        try:
            if self.workers == 0:
                self._run_inprocess()
            else:
                self._run_mp()
        finally:
            self.last_wall_seconds = time.perf_counter() - t_run
            self._drain_control()
        return self.report()

    # -- in-process ----------------------------------------------------
    def _run_inprocess(self) -> None:
        self._pools = {}
        for sid in self._nonterminal():
            sess = self.sessions[sid]
            if sess.status is SessionStatus.REJECTED:
                continue
            self._pools[sid] = LocalFramePool(
                sess.layout, slots=sess.picture_count
            )

        def add_session(sid: str) -> None:
            sess = self.sessions[sid]
            self._pools[sid] = LocalFramePool(
                sess.layout, slots=sess.picture_count
            )

        self._add_pool = add_session
        self.last_pool_bytes = 0
        while True:
            self._apply_control()
            if self._should_exit():
                break
            task = self.scheduler.next_task()
            if task is None:
                before = set(self._nonterminal())
                self._strand_check()
                if set(self._nonterminal()) != before:
                    continue
                if self._dynamic and not self._stopping:
                    # Idle dynamic service: wait for intake/cancel.
                    time.sleep(0.001)
                    continue
                break  # only queued-forever/rejected remain
            sid = task.session
            sess = self.sessions[sid]
            counters = WorkCounters()
            task_t0 = time.perf_counter()
            try:
                for order in task.orders:
                    decode_picture_into_pool(
                        sess.data,
                        sess.plans[order],
                        sess.seq,
                        sess.index.mb_width,
                        sess.index.mb_height,
                        self._pools[sid],
                        sess.resilient,
                        counters,
                    )
            except Exception as exc:
                # No scheduler.complete(): _fail_session retires the
                # whole lane, in-flight task included.
                metrics().counter("serve.worker.task_errors").inc()
                self._handle_err(sid, task.key, *(_exc_payload(exc)))
                continue
            finally:
                # Same worker-metric names as the mp path (the parent
                # stands in for the worker), so report consumers see
                # one vocabulary regardless of ``workers``.
                metrics().counter("serve.worker.tasks").inc()
                metrics().histogram("serve.worker.task_ms").observe(
                    (time.perf_counter() - task_t0) * 1e3
                )
            metrics().counter("serve.worker.pictures").inc(len(task.orders))
            self._handle_ok(sid, task.key, counters)

    # -- real processes ------------------------------------------------
    def _spawn_worker(
        self, ctx, wid: int, meta: dict, result_q, trace_dir, obs_dir
    ):
        task_q = ctx.Queue()
        proc = ctx.Process(
            target=_serve_worker_main,
            args=(
                wid, meta, task_q, result_q, trace_dir, obs_dir,
                self._crash_task, self._hang_task,
            ),
            daemon=True,
        )
        proc.start()
        return {"proc": proc, "task_q": task_q, "wid": wid}

    def _collect_metric_shards(self, obs_dir: str) -> None:
        """Merge per-pid worker metric shards into the parent registry.

        Runs after every worker has been joined, so each shard is that
        worker's final state.  Shards from workers killed mid-write
        cannot occur (atomic replace), but unreadable files are skipped
        rather than failing teardown.  The per-pid snapshots are kept
        on :attr:`last_worker_metrics` so callers (and the regression
        test) can check parent totals == sum of worker totals.
        """
        for path in sorted(glob.glob(os.path.join(obs_dir, "metrics-*.json"))):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    snap = json.load(fh)
            except (OSError, ValueError):  # pragma: no cover - defensive
                continue
            pid_text = os.path.basename(path)[len("metrics-"):-len(".json")]
            self.last_worker_metrics.append(
                {"pid": int(pid_text), "metrics": snap}
            )
            metrics().merge_snapshot(snap)

    def _run_mp(self) -> None:
        ctx = multiprocessing.get_context(self.start_method)
        # A dynamic service may fork its workers before any shared
        # memory exists.  A child forked with no inherited resource
        # tracker lazily starts its *own* on attach, and that tracker
        # "cleans up" the still-live segment when the worker exits —
        # unlinking it out from under the parent.  Starting the
        # parent's tracker first makes every child inherit it, so
        # segments are unlinked exactly once, by their owner.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        trace_dir = (
            tempfile.mkdtemp(prefix="repro-trace-")
            if tracing_enabled()
            else None
        )
        # Worker metric shards (unconditional — unlike tracing, the
        # metrics registry is always on and recording is cheap).
        obs_dir = tempfile.mkdtemp(prefix="repro-serve-obs-")
        # Frame pools, bitstream arenas (published once per session) +
        # the immutable worker-side decode context for every admitted
        # (active or queued) session.
        self._pools = {}
        self._arenas: dict[str, StreamArena] = {}
        meta: dict[str, dict] = {}
        for sid in self._nonterminal():
            sess = self.sessions[sid]
            if sess.status is SessionStatus.REJECTED:
                continue
            pool = SharedFramePool(sess.layout, slots=sess.picture_count)
            arena = StreamArena(sess.data)
            self._pools[sid] = pool
            self._arenas[sid] = arena
            meta[sid] = {
                "arena_name": arena.name,
                "arena_size": arena.size,
                "plans": sess.plans,
                "seq": sess.seq,
                "layout": sess.layout,
                "pool_name": pool.name,
                "mb_width": sess.index.mb_width,
                "mb_height": sess.index.mb_height,
                "resilient": sess.resilient,
            }
        self.last_pool_bytes = sum(p.nbytes for p in self._pools.values())
        if not meta and not self._dynamic:
            # Nothing decodable was admitted; settle and bail.  (A
            # dynamic service starts empty on purpose and waits.)
            release_segments(
                *self._pools.values(), *self._arenas.values()
            )
            shutil.rmtree(obs_dir, ignore_errors=True)
            return

        result_q = ctx.Queue()
        workers: dict[int, dict] = {}
        dead_queues: list = []
        #: wid -> (task, assigned_monotonic)
        assignment: dict[int, tuple[ServeTask, float]] = {}
        next_wid = 0
        for _ in range(self.workers):
            workers[next_wid] = self._spawn_worker(
                ctx, next_wid, meta, result_q, trace_dir, obs_dir
            )
            next_wid += 1

        def add_session(sid: str) -> None:
            # Mid-run admission: publish the session's segments, then
            # broadcast the decode context to every live worker (late
            # replacements get it via the mutated ``meta`` at spawn).
            sess = self.sessions[sid]
            pool = SharedFramePool(sess.layout, slots=sess.picture_count)
            arena = StreamArena(sess.data)
            self._pools[sid] = pool
            self._arenas[sid] = arena
            m = {
                "arena_name": arena.name,
                "arena_size": arena.size,
                "plans": sess.plans,
                "seq": sess.seq,
                "layout": sess.layout,
                "pool_name": pool.name,
                "mb_width": sess.index.mb_width,
                "mb_height": sess.index.mb_height,
                "resilient": sess.resilient,
            }
            meta[sid] = m
            self.last_pool_bytes += pool.nbytes
            for entry in workers.values():
                try:
                    entry["task_q"].put(("__meta__", sid, m))
                except (OSError, ValueError):  # pragma: no cover
                    pass  # dying worker; its replacement gets full meta

        self._add_pool = add_session

        depth_gauge = metrics().gauge("serve.inflight")

        def dispatch() -> None:
            idle = [w for w in workers if w not in assignment]
            for wid in idle:
                task = self.scheduler.next_task()
                if task is None:
                    return
                excluded = self.excluded.get((task.session, task.key), set())
                target = wid
                if wid in excluded:
                    # Prefer a non-excluded idle worker; requeue and
                    # stop if none (a replacement will pick it up).
                    others = [
                        w for w in workers
                        if w not in assignment and w not in excluded
                        and w != wid
                    ]
                    if not others:
                        self.scheduler.requeue(task)
                        return
                    target = others[0]
                assignment[target] = (task, time.monotonic())
                depth_gauge.inc()
                workers[target]["task_q"].put(
                    (task.session, task.key, task.orders)
                )

        def handle_worker_loss(wid: int, why: str) -> None:
            nonlocal next_wid
            entry = workers.pop(wid)
            reap_processes([entry["proc"]], _SHUTDOWN_GRACE_S)
            dead_queues.append(entry["task_q"])
            held = assignment.pop(wid, None)
            metrics().counter(f"serve.worker.{why}").inc()
            if held is not None:
                self.flight.record(
                    held[0].session, "worker.lost", wid=wid, why=why,
                    key=str(held[0].key),
                )
            if held is not None:
                depth_gauge.dec()
                task, _t0 = held
                sess = self.sessions[task.session]
                excl = self.excluded.setdefault(
                    (task.session, task.key), set()
                )
                excl.add(wid)
                if sess.terminal:
                    pass  # moot: session already settled
                elif len(excl) > self.max_task_retries:
                    self._fail_session(
                        task.session,
                        {
                            "type": "DecodeError",
                            "message": (
                                f"task {task.key} lost {len(excl)} workers "
                                f"({why}); retry budget exhausted"
                            ),
                        },
                    )
                else:
                    metrics().counter("serve.task.retries").inc()
                    self.scheduler.requeue(task)
            # Keep the pool at strength: one replacement per loss.
            workers[next_wid] = self._spawn_worker(
                ctx, next_wid, meta, result_q, trace_dir, obs_dir
            )
            next_wid += 1

        def on_timeout() -> bool:
            """Liveness check between polls: handle a dead or hung
            worker (truthy return abandons the wait so the caller can
            re-dispatch), or bail out when nothing is in flight."""
            now = time.monotonic()
            for wid in list(workers):
                proc = workers[wid]["proc"]
                if proc.exitcode is not None:
                    handle_worker_loss(wid, "died")
                    return True
                held = assignment.get(wid)
                if (
                    held is not None
                    and now - held[1] > self.task_timeout_s
                ):
                    handle_worker_loss(wid, "timeout")
                    return True
            return not assignment  # nothing in flight; let caller act

        def wait_result():
            """Liveness-polled result wait; returns None on a handled
            death/timeout (caller re-dispatches and loops)."""
            return timed_queue_get(
                result_q,
                on_timeout=on_timeout,
                stalls=self.last_stalls,
                who="serve",
                span="serve.result.wait",
            )

        try:
            dispatch()
            while True:
                self._apply_control()
                if self._should_exit():
                    break
                if not self._nonterminal():
                    # Dynamic service with no sessions yet: idle-wait.
                    time.sleep(0.002)
                    continue
                if not assignment:
                    dispatch()
                    if not assignment:
                        before = set(self._nonterminal())
                        self._strand_check()
                        if set(self._nonterminal()) != before:
                            continue
                        if self._dynamic and not self._stopping:
                            time.sleep(0.002)
                            continue
                        break
                result = wait_result()
                if result is None:
                    dispatch()
                    continue
                kind = result[0]
                if kind == "obs":  # pragma: no cover - shutdown only
                    continue
                _, wid, sid, key = result[:4]
                if wid in assignment:
                    held_task, _ = assignment[wid]
                    if held_task.key == key and held_task.session == sid:
                        del assignment[wid]
                        depth_gauge.dec()
                if kind == "ok":
                    self._handle_ok(sid, key, result[4])
                else:
                    self._handle_err(sid, key, result[4], result[5])
                dispatch()
        finally:
            # Graceful shutdown: sentinel every live worker, collect
            # their observability snapshots, then reap everything.
            for wid, entry in list(workers.items()):
                if entry["proc"].is_alive():
                    try:
                        entry["task_q"].put(None)
                    except (OSError, ValueError):  # pragma: no cover
                        pass
            deadline = time.monotonic() + _SHUTDOWN_GRACE_S
            obs_expected = sum(
                1 for e in workers.values() if e["proc"].is_alive()
            )
            while obs_expected > 0 and time.monotonic() < deadline:
                try:
                    result = result_q.get(timeout=LIVENESS_POLL_S)
                except queue_mod.Empty:
                    if not any(
                        e["proc"].is_alive() for e in workers.values()
                    ):
                        break
                    continue
                if result[0] == "obs":
                    if result[3] is not None:
                        self.last_stalls.merge(result[3])
                    obs_expected -= 1
            for entry in workers.values():
                entry["proc"].join(timeout=_SHUTDOWN_GRACE_S)
            reap_processes(
                [e["proc"] for e in workers.values()], _SHUTDOWN_GRACE_S
            )
            close_queues(
                *[e["task_q"] for e in workers.values()],
                *dead_queues,
                result_q,
            )
            release_segments(
                *self._pools.values(), *self._arenas.values()
            )
            # Workers are joined: merge their final metric shards (the
            # cross-process gap fix — worker counters now reach the
            # parent registry), then the shards are gone.
            self._collect_metric_shards(obs_dir)
            shutil.rmtree(obs_dir, ignore_errors=True)
            if trace_dir is not None:
                collect_trace_shards(trace_dir)

    # ------------------------------------------------------------------
    def stall_breakdown(self) -> dict[str, float]:
        """Fraction of aggregate process time blocked, per reason."""
        procs = self.workers + 1 if self.workers else 1
        return self.last_stalls.breakdown(self.last_wall_seconds * procs)

    def report(self) -> dict:
        """JSON-able service report: sessions + aggregates."""
        sessions = [s.report() for s in self.sessions.values()]
        status_counts: dict[str, int] = {}
        for s in self.sessions.values():
            status_counts[s.status.value] = (
                status_counts.get(s.status.value, 0) + 1
            )
        all_lateness: list[float] = []
        for s in self.sessions.values():
            all_lateness.extend(s.pacer.lateness)
        misses = sum(1 for x in all_lateness if x > 0)
        return {
            "workers": self.workers,
            "fps": self.fps,
            "capacity": self.capacity,
            "max_queue": self.max_queue,
            "max_inflight": self.max_inflight,
            "wall_seconds": self.last_wall_seconds,
            "pool_bytes": self.last_pool_bytes,
            "sessions": sessions,
            "status_counts": status_counts,
            "deadline": {
                "emitted": len(all_lateness),
                "missed": misses,
                "miss_fraction": (
                    misses / len(all_lateness) if all_lateness else 0.0
                ),
                "max_lateness_s": max(all_lateness, default=0.0),
            },
            "stalls": self.last_stalls.snapshot(),
        }


def serve_streams(
    named_streams: list[tuple[str, bytes]],
    workers: int | None = None,
    fps: float | None = None,
    **kwargs,
) -> dict:
    """Convenience: submit every stream, run, return the report."""
    svc = DecodeService(workers=workers, fps=fps, **kwargs)
    for name, data in named_streams:
        svc.submit(name, data)
    return svc.run()
