"""Cross-boundary trace propagation: clock algebra, merge, joins."""

from __future__ import annotations

import pytest

from repro.obs.propagate import (
    EVENT_CLOCK_SYNC,
    EVENT_DEADLINE,
    SPAN_REASSEMBLE,
    SPAN_WIRE,
    ClockSync,
    TraceJoinError,
    clock_syncs,
    doc_clock_offset_ns,
    merge_traces,
    new_trace_id,
    sessions_in,
    validate_joins,
    waterfall,
)
from repro.obs.trace import Tracer, to_chrome


def _instant(tracer, name, ts_ns, args):
    tracer.extend([{
        "ph": "i", "name": name, "cat": "e2e", "ts": ts_ns,
        "pid": tracer.pid, "tid": 0, "s": "t", "args": args,
    }])


class TestTraceId:
    def test_unique_and_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for tid in ids:
            assert len(tid) == 16
            int(tid, 16)


class TestClockSync:
    def test_symmetric_link_recovers_exact_offset(self):
        # Server clock runs 1000ns ahead; both legs take 50ns.
        sync = ClockSync(
            t_client_send_ns=0,
            t_server_recv_ns=1050,
            t_server_send_ns=1250,
            t_client_recv_ns=300,
        )
        assert sync.offset_ns == 1000
        assert sync.rtt_ns == 100
        assert sync.error_bound_ns == 51

    def test_error_bound_covers_asymmetry(self):
        # True offset 1000, but legs are 10ns / 90ns — the estimate is
        # wrong by the asymmetry, which stays inside the rtt/2 bound.
        sync = ClockSync(
            t_client_send_ns=0,
            t_server_recv_ns=1010,
            t_server_send_ns=1210,
            t_client_recv_ns=300,
        )
        assert sync.offset_ns != 1000
        assert abs(sync.offset_ns - 1000) <= sync.error_bound_ns

    def test_rtt_never_negative(self):
        sync = ClockSync(0, 500, 5000, 100)
        assert sync.rtt_ns == 0

    def test_to_json_round_trips_derived_fields(self):
        sync = ClockSync(0, 1050, 1250, 300)
        j = sync.to_json()
        assert j == {
            "offset_ns": 1000,
            "rtt_ns": 100,
            "error_bound_ns": 51,
        }


def _server_doc(pics=(0, 1), base=1_000_000_000, session="s#0"):
    tracer = Tracer(process_name="server")
    for pic in pics:
        tracer.complete(
            SPAN_WIRE, "e2e", base + pic * 1_000_000, 200_000,
            args={"session": session, "pic": pic},
        )
    return to_chrome(tracer.events)


def _client_doc(
    pics=(0, 1), base=2_000_000_000, offset_ns=-500_000_000,
    session="s#0", pid_name="client",
):
    # The client clock reads `server - offset`; its shard records the
    # measured offset in a clock.sync instant just like the real client.
    tracer = Tracer(process_name=pid_name)
    _instant(
        tracer, EVENT_CLOCK_SYNC, base,
        {"session": session, "offset_ns": offset_ns,
         "rtt_ns": 1000, "error_bound_ns": 501},
    )
    for pic in pics:
        tracer.complete(
            SPAN_REASSEMBLE, "e2e",
            base + pic * 1_000_000 + 300_000, 100_000,
            args={"session": session, "pic": pic},
        )
        _instant(
            tracer, EVENT_DEADLINE, base + pic * 1_000_000 + 400_000,
            {"session": session, "pic": pic, "late_ms": 2.0 * pic},
        )
    return to_chrome(tracer.events)


class TestMerge:
    def test_requires_base_time(self):
        doc = _server_doc()
        del doc["baseTimeNs"]
        with pytest.raises(ValueError, match="baseTimeNs"):
            merge_traces([doc])

    def test_client_shifted_onto_server_clock(self):
        # Server events at 1.0s+; client events at 2.0s+ on a clock
        # that is 500ms BEHIND... offset_ns = server - client = -0.5s
        # means client is AHEAD; shifting by the offset lands the
        # client events back at ~1.5s-equivalents on the server axis.
        server = _server_doc(base=1_000_000_000)
        client = _client_doc(base=1_500_000_000, offset_ns=-500_000_000)
        merged = merge_traces([server, client])
        wire = [
            e for e in merged["traceEvents"]
            if e.get("name") == SPAN_WIRE
        ]
        reasm = [
            e for e in merged["traceEvents"]
            if e.get("name") == SPAN_REASSEMBLE
        ]
        assert wire and reasm
        for w, r in zip(
            sorted(wire, key=lambda e: e["ts"]),
            sorted(reasm, key=lambda e: e["ts"]),
        ):
            # On the merged axis the reassembly starts 300µs after the
            # wire send (the synthetic one-way latency), clock skew
            # fully cancelled.
            assert r["ts"] - w["ts"] == pytest.approx(300.0, abs=1.0)

    def test_doc_clock_offset_mean_and_default(self):
        assert doc_clock_offset_ns(_server_doc()) == 0
        client = _client_doc(offset_ns=100)
        assert doc_clock_offset_ns(client) == 100

    def test_merge_preserves_both_pids(self):
        merged = merge_traces([_server_doc(), _client_doc()])
        stats = validate_joins(merged)
        assert stats["client_pids"] and stats["server_pids"]

    def test_empty_doc_list_rejected(self):
        with pytest.raises(ValueError):
            merge_traces([])


class TestJoins:
    def test_joined_counts(self):
        merged = merge_traces([_server_doc(), _client_doc()])
        stats = validate_joins(merged)
        assert stats["joined"] == 2
        assert stats["client_spans"] == 2
        assert stats["server_spans"] == 2

    def test_orphan_client_span_fails(self):
        merged = merge_traces(
            [_server_doc(pics=(0,)), _client_doc(pics=(0, 1))]
        )
        with pytest.raises(TraceJoinError, match="no matching"):
            validate_joins(merged)

    def test_no_client_spans_fails_loudly(self):
        with pytest.raises(TraceJoinError, match="no client"):
            validate_joins(merge_traces([_server_doc()]))


class TestWaterfall:
    def test_stage_stats_and_lateness(self):
        merged = merge_traces(
            [_server_doc(pics=(0, 1, 2)), _client_doc(pics=(0, 1, 2))]
        )
        stages = waterfall(merged)
        assert stages[SPAN_WIRE]["count"] == 3
        assert stages[SPAN_WIRE]["mean_ms"] == pytest.approx(0.2)
        late = stages["deadline.lateness"]
        assert late["count"] == 3
        assert late["max_ms"] == pytest.approx(4.0)

    def test_lateness_clamped_at_zero(self):
        doc = _client_doc(pics=(0,))
        for e in doc["traceEvents"]:
            if e.get("name") == EVENT_DEADLINE:
                e["args"]["late_ms"] = -3.0
        stages = waterfall(doc)
        assert stages["deadline.lateness"]["max_ms"] == 0.0


class TestHelpers:
    def test_clock_syncs_and_sessions(self):
        merged = merge_traces(
            [
                _server_doc(),
                _client_doc(session="s#0"),
                _client_doc(
                    session="s#1", offset_ns=250, pid_name="client2"
                ),
            ]
        )
        syncs = clock_syncs(merged)
        assert len(syncs) == 2
        assert {s["session"] for s in syncs} == {"s#0", "s#1"}
        assert sessions_in(merged) == ["s#0", "s#1"]
