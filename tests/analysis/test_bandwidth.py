"""Bandwidth profiler: wire-byte accounting and admission arithmetic."""

from __future__ import annotations

import os

import pytest

from repro.analysis.bandwidth import (
    BandwidthProfile,
    admissible_sessions,
    format_profile,
    profile_stream,
)
from repro.mpeg2.index import build_index

VECTOR_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "vectors")


def load(name: str) -> bytes:
    with open(os.path.join(VECTOR_DIR, f"{name}.m2v"), "rb") as fh:
        return fh.read()


class TestProfileStream:
    def test_accounts_almost_every_wire_byte(self):
        # Per-GOP sums cover the stream minus the sequence header and
        # end code — nothing double counted, nothing big missed.
        data = load("two_gop_48x32")
        p = profile_stream(data, fps=30.0)
        covered = sum(g.wire_bytes for g in p.gops)
        assert covered <= len(data)
        assert covered >= len(data) - 64  # seq header + end code slack

    def test_mean_rate_matches_duration(self):
        data = load("ipb_64x48_gop13")
        p = profile_stream(data, fps=25.0)
        assert p.pictures == 13
        assert p.mean_bps == pytest.approx(len(data) * 8 * 25.0 / 13)

    def test_i_pictures_cost_more_than_b(self):
        p = profile_stream(load("ipb_64x48_gop13"))
        assert p.mean_picture_bytes["I"] > p.mean_picture_bytes["B"]

    def test_burstiness_is_peak_over_mean_and_at_least_one(self):
        for name in ("ipb_64x48_gop13", "two_gop_48x32", "rc_64x48_gop4"):
            p = profile_stream(load(name))
            assert p.burstiness >= 1.0
            assert p.peak_bps == pytest.approx(p.burstiness * p.mean_bps)

    def test_prebuilt_index_is_accepted(self):
        data = load("two_gop_48x32")
        a = profile_stream(data, index=build_index(data))
        b = profile_stream(data)
        assert a.to_json() == b.to_json()

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            profile_stream(load("two_gop_48x32"), fps=0)

    def test_report_renders(self):
        text = format_profile(profile_stream(load("two_gop_48x32")))
        assert "burstiness" in text and "per-GOP bandwidth" in text


class TestAdmission:
    def _profile(self, peak: float) -> BandwidthProfile:
        return BandwidthProfile(
            stream_bytes=1000,
            pictures=10,
            fps=30.0,
            mean_bps=peak / 2,
            peak_bps=peak,
            burstiness=2.0,
            gops=(),
        )

    def test_admits_prefix_within_budget_on_peaks(self):
        profiles = [self._profile(40_000)] * 4
        assert admissible_sessions(profiles, link_bps=100_000) == 2
        assert admissible_sessions(profiles, link_bps=160_000) == 4

    def test_first_session_always_admitted(self):
        assert admissible_sessions([self._profile(1e9)], link_bps=1000) == 1

    def test_empty_offer_admits_zero(self):
        assert admissible_sessions([], link_bps=1000) == 0

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            admissible_sessions([], link_bps=0)
