"""Streaming client: reassembly, concealment, deadline measurement.

The client is the far edge of the loss story.  Slices arrive as
droppable ``SLICE`` band messages; the reliable ``PIC_DONE`` commit
tells the client a picture is over, and any row that never arrived is
concealed with the *same* primitives the resilient decoders use
(:func:`repro.mpeg2.reconstruct.conceal_rows`): temporal from the
previously displayed picture when one exists, spatial row-copy
otherwise.  Every picture therefore ends *delivered or concealed* —
the invariant the network benchmarks gate on.

Measurement mirrors the serve layer: a
:class:`~repro.parallel.pacing.WallClockPacer` anchors at the first
commit and records per-picture lateness; concealment time lands in a
:class:`~repro.obs.stalls.StallTable` under the ``conceal.*`` reasons.

PR-8 telemetry: the client mints a trace id, performs the clock-offset
handshake over HELLO/ACCEPT (:class:`repro.obs.propagate.ClockSync`)
and — when tracing is enabled — emits the client half of the
per-picture end-to-end spans (``e2e.reassemble``, ``e2e.conceal``, the
``e2e.deadline`` instant) plus a ``clock.sync`` instant carrying the
measured offset, which is what lets its trace shard merge onto the
server's clock.  Server-pushed ``STATS`` frames (live SLO snapshots)
are collected on :attr:`ClientResult.server_stats`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.mpeg2.frame import Frame
from repro.mpeg2.reconstruct import conceal_rows
from repro.net.protocol import (
    MSG_ACCEPT,
    MSG_BYE,
    MSG_HELLO,
    MSG_PIC_DONE,
    MSG_RATE,
    MSG_REJECT,
    MSG_SEEK,
    MSG_SLICE,
    MSG_STATS,
    ProtocolError,
    band_into,
    encode_message,
    read_message,
)
from repro.obs.propagate import (
    E2E_CATEGORY,
    EVENT_CLOCK_SYNC,
    EVENT_DEADLINE,
    SPAN_CONCEAL,
    SPAN_REASSEMBLE,
    ClockSync,
    new_trace_id,
)
from repro.obs.stalls import StallTable, record_concealment
from repro.obs.trace import trace_complete, trace_instant
from repro.parallel.pacing import WallClockPacer


@dataclass
class PictureReceipt:
    """Per-picture delivery record."""

    pic: int
    bands: int               # band messages that arrived
    rows: int                # bands the picture needs
    concealed_temporal: int = 0
    concealed_spatial: int = 0
    shed: bool = False       # server degraded it away (no bands sent)
    late_s: float = 0.0

    @property
    def concealed(self) -> int:
        return self.concealed_temporal + self.concealed_spatial


@dataclass
class ClientResult:
    """Outcome of one streamed session."""

    stream: str
    status: str = "pending"  # done | rejected:<reason> | disconnected
    pictures: int = 0        # server-announced picture count
    receipts: list[PictureReceipt] = field(default_factory=list)
    frames: list[Frame] = field(default_factory=list)
    stalls: StallTable = field(default_factory=StallTable)
    pacer: WallClockPacer = field(default_factory=WallClockPacer)
    reject_reason: str | None = None
    late_slices: int = 0     # bands that arrived after their commit
    session: str | None = None   # server-assigned session id
    trace_id: str | None = None  # client-minted, echoed by ACCEPT
    clock: ClockSync | None = None
    server_stats: list[dict] = field(default_factory=list)
    rate: int = 1                # server-confirmed trick-play rate
    join_gop: int = 0            # closed GOP the session joined at
    join_display_base: int = 0   # source display index of picture 0

    @property
    def slo(self) -> dict | None:
        """Most recent server-pushed SLO snapshot (None before one)."""
        for header in reversed(self.server_stats):
            if header.get("slo") is not None:
                return header["slo"]
        return None

    @property
    def delivered(self) -> int:
        """Pictures fully delivered (every band arrived, not shed)."""
        return sum(
            1 for r in self.receipts if not r.shed and r.concealed == 0
        )

    @property
    def concealed_pictures(self) -> int:
        return sum(1 for r in self.receipts if r.concealed > 0)

    @property
    def concealed_slices(self) -> int:
        return sum(r.concealed for r in self.receipts)

    @property
    def shed_pictures(self) -> int:
        return sum(1 for r in self.receipts if r.shed)

    @property
    def abandoned(self) -> int:
        """Pictures whose commit never arrived (disconnect)."""
        return max(0, self.pictures - len(self.receipts))

    @property
    def complete(self) -> bool:
        """Every announced picture delivered, concealed, or shed."""
        return self.status == "done" and self.abandoned == 0

    def to_json(self) -> dict:
        return {
            "stream": self.stream,
            "status": self.status,
            "pictures": self.pictures,
            "delivered": self.delivered,
            "concealed_pictures": self.concealed_pictures,
            "concealed_slices": self.concealed_slices,
            "shed_pictures": self.shed_pictures,
            "abandoned": self.abandoned,
            "late_slices": self.late_slices,
            "lateness": self.pacer.summary() if self.pacer.enabled else None,
            # Fixed percentiles, not the raw per-picture CDF knots —
            # keeps BENCH_net.json small (readers accept both shapes).
            "lateness_cdf": (
                self.pacer.lateness_percentiles()
                if self.pacer.enabled
                else None
            ),
            "session": self.session,
            "rate": self.rate,
            "join_gop": self.join_gop,
            "join_display_base": self.join_display_base,
            "trace_id": self.trace_id,
            "clock": self.clock.to_json() if self.clock else None,
            "slo": self.slo,
            "server_stats_pushes": len(self.server_stats),
        }


async def stream_session(
    host: str,
    port: int,
    stream: str,
    keep_frames: bool = False,
    send_stats: bool = True,
    disconnect_after: int | None = None,
    timeout_s: float = 60.0,
    seek: int | None = None,
    rate: int = 1,
) -> ClientResult:
    """Stream one session and return its :class:`ClientResult`.

    ``disconnect_after=k`` hangs up abruptly after ``k`` picture
    commits (the misbehaving-client fixture the disconnect tests use).
    ``seek=p`` requests a mid-stream join at the closed GOP owning
    source picture ``p``; ``rate`` in (2, 4) requests fast-forward —
    both travel as reliable SEEK/RATE frames right after HELLO.
    """
    result = ClientResult(stream=stream)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await asyncio.wait_for(
            _run(result, reader, writer, stream, keep_frames,
                 send_stats, disconnect_after, seek=seek, rate=rate),
            timeout=timeout_s,
        )
    except (ConnectionError, ProtocolError, asyncio.TimeoutError):
        result.status = "disconnected"
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    return result


async def _run(
    result, reader, writer, stream, keep_frames, send_stats,
    disconnect_after, seek=None, rate=1,
) -> None:
    seq = 0
    result.trace_id = new_trace_id()
    t_send_ns = time.monotonic_ns()
    controls = (0 if seek is None else 1) + (0 if rate == 1 else 1)
    writer.write(
        encode_message(
            MSG_HELLO, seq,
            {"stream": stream, "trace": result.trace_id, "t_ns": t_send_ns,
             "controls": controls},
        )
    )
    seq += 1
    # Trick-play controls ride the reliable channel, announced by
    # HELLO's ``controls`` count so the server reads exactly these
    # before admission.
    if seek is not None:
        writer.write(encode_message(MSG_SEEK, seq, {"picture": int(seek)}))
        seq += 1
    if rate != 1:
        writer.write(encode_message(MSG_RATE, seq, {"rate": int(rate)}))
        seq += 1
    await writer.drain()
    first = await read_message(reader)
    t_recv_ns = time.monotonic_ns()
    if first is None:
        result.status = "disconnected"
        return
    if first.type == MSG_REJECT:
        reason = first.header.get("reason", "unknown")
        result.status = f"rejected:{reason}"
        result.reject_reason = reason
        return
    if first.type != MSG_ACCEPT:
        raise ProtocolError(f"expected ACCEPT, got {first.type_name}")
    width = first.header["width"]
    height = first.header["height"]
    result.pictures = first.header["pictures"]
    result.session = first.header.get("session", stream)
    result.rate = int(first.header.get("rate", 1))
    result.join_gop = int(first.header.get("join_gop", 0))
    result.join_display_base = int(first.header.get("join_display_base", 0))
    result.pacer = WallClockPacer(
        rate_hz=first.header["fps"],
        preroll_pictures=first.header.get("preroll", 0),
    )
    clock = first.header.get("clock")
    if clock is not None:
        result.clock = ClockSync(
            t_client_send_ns=t_send_ns,
            t_server_recv_ns=clock["recv_ns"],
            t_server_send_ns=clock["send_ns"],
            t_client_recv_ns=t_recv_ns,
        )
        # Recorded into the trace so the shard carries its own mapping
        # onto the server clock (repro.obs.propagate.merge_traces).
        trace_instant(
            EVENT_CLOCK_SYNC, E2E_CATEGORY,
            session=result.session,
            trace=result.trace_id,
            **result.clock.to_json(),
        )

    bands: dict[int, dict[int, bytes]] = {}
    first_band_ns: dict[int, int] = {}
    finalized: set[int] = set()
    prev_frame: Frame | None = None

    while len(finalized) < result.pictures:
        msg = await read_message(reader)
        if msg is None:
            result.status = "disconnected"
            return
        if msg.type == MSG_SLICE:
            pic = msg.header["pic"]
            if pic in finalized:
                result.late_slices += 1
                continue
            if pic not in first_band_ns:
                first_band_ns[pic] = time.monotonic_ns()
            bands.setdefault(pic, {})[msg.header["row"]] = msg.payload
            continue
        if msg.type == MSG_STATS:
            # Server-side telemetry push (live SLO + metrics digest).
            result.server_stats.append(msg.header)
            continue
        if msg.type == MSG_BYE:
            # Early BYE: server gave up (decode failure) — everything
            # uncommitted is abandoned.
            result.status = "disconnected"
            return
        if msg.type != MSG_PIC_DONE:
            raise ProtocolError(f"unexpected {msg.type_name} mid-stream")

        pic = msg.header["pic"]
        rows = msg.header["rows"]
        finalized.add(pic)
        got = bands.pop(pic, {})
        receipt = PictureReceipt(
            pic=pic, bands=len(got), rows=rows,
            shed=bool(msg.header.get("shed", False)),
        )
        if receipt.shed:
            # Degraded away server-side: display holds the previous
            # picture; nothing to conceal.
            result.receipts.append(receipt)
            receipt.late_s = result.pacer.on_emit(pic)
            trace_instant(
                EVENT_DEADLINE, E2E_CATEGORY,
                session=result.session, pic=pic, shed=True,
                late_ms=receipt.late_s * 1e3,
            )
            continue
        assemble_start_ns = first_band_ns.pop(pic, time.monotonic_ns())
        frame = Frame.blank(width, height)
        missing = []
        for row in range(rows):
            payload = got.get(row)
            if payload is None:
                missing.append(row)
            else:
                band_into(frame, row, payload)
        if missing:
            t0 = time.perf_counter()
            conceal_start_ns = time.monotonic_ns()
            n_t, n_s = conceal_rows(frame, prev_frame, missing)
            record_concealment(
                result.stalls, "client", n_t, n_s,
                time.perf_counter() - t0,
            )
            trace_complete(
                SPAN_CONCEAL, E2E_CATEGORY,
                conceal_start_ns,
                time.monotonic_ns() - conceal_start_ns,
                session=result.session, pic=pic,
                temporal=n_t, spatial=n_s,
            )
            receipt.concealed_temporal = n_t
            receipt.concealed_spatial = n_s
        trace_complete(
            SPAN_REASSEMBLE, E2E_CATEGORY,
            assemble_start_ns,
            time.monotonic_ns() - assemble_start_ns,
            session=result.session, pic=pic,
            bands=receipt.bands, rows=rows,
            concealed=receipt.concealed,
        )
        receipt.late_s = result.pacer.on_emit(pic)
        trace_instant(
            EVENT_DEADLINE, E2E_CATEGORY,
            session=result.session, pic=pic,
            late_ms=receipt.late_s * 1e3,
        )
        result.receipts.append(receipt)
        prev_frame = frame
        if keep_frames:
            result.frames.append(frame)
        if send_stats:
            writer.write(
                encode_message(
                    MSG_STATS, seq,
                    {
                        "pic": pic,
                        "bands": receipt.bands,
                        "rows": rows,
                        "concealed_temporal": receipt.concealed_temporal,
                        "concealed_spatial": receipt.concealed_spatial,
                        "late_ms": receipt.late_s * 1e3,
                    },
                )
            )
            seq += 1
            await writer.drain()
        if (
            disconnect_after is not None
            and len(result.receipts) >= disconnect_after
        ):
            # Abrupt hangup mid-stream: the server must cancel us
            # without disturbing its other sessions.
            result.status = "disconnected"
            return
    result.status = "done"
