"""Multi-stream serve capacity: sessions sustained, miss CDF, overload.

The paper asks "can one machine decode one stream in real time"; the
ROADMAP's service layer asks the next question — *how many* concurrent
real-time sessions one worker pool sustains, and what happens past
that point.  This harness measures :class:`repro.serve.DecodeService`
on real worker processes and writes ``BENCH_serve.json`` at the repo
root with three sections:

* ``sessions_vs_workers`` — for each worker count, the largest number
  of concurrent paced sessions whose aggregate deadline-miss fraction
  stays under :data:`MISS_BUDGET` (binary-search style sweep up the
  session counts), with the per-point miss fraction and wall time;
* ``miss_cdf`` — the deadline-miss CDF at the sustained point and at
  saturation (one session past it): ``P(lateness <= x)`` knots from
  :meth:`repro.parallel.pacing.WallClockPacer.miss_cdf`;
* ``overload_2x`` — deliberate 2x overload (per-session fps set to
  twice what the measured throughput can carry) demonstrating
  *graceful* degradation: every session still reaches a terminal
  DONE state (reduced effective fps via shed B tasks / skipped GOPs),
  zero crashed sessions, zero leaked ``/dev/shm`` segments, and the
  ``degrade.*`` action counters show the policy actually fired.

The pytest gate (``perf`` marker, never tier-1) asserts the graceful
part — zero failures, zero leaks, degradation engaged under 2x
overload — and that at least one paced session is sustainable; raw
sustained counts are machine-dependent and recorded, not asserted.

Run directly (``PYTHONPATH=src python benchmarks/perf_serve.py``) or
via ``pytest benchmarks/perf_serve.py -m perf``.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import sys
from dataclasses import asdict
from datetime import datetime, timezone
from time import perf_counter

import numpy as np
import pytest

from repro.serve import DecodeService, DegradePolicy
from repro.video.streams import TestStreamSpec, build_stream

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_serve.json")

#: Worker-pool sizes swept for the sessions-vs-workers table.
WORKER_COUNTS = (1, 2, 4)

#: Aggregate deadline-miss fraction a "sustained" point must stay under.
MISS_BUDGET = 0.05

#: Per-session display rate for the sustained-sessions sweep.
FPS = 30.0

#: Session counts probed per worker count (ascending; the sweep stops
#: at the first unsustainable point).
SESSION_COUNTS = (1, 2, 3, 4, 6, 8, 12, 16)

#: The serve workload: one paper-shaped stream per session — IPB GOPs
#: so B-task shedding has something to shed.
SERVE_SPEC = TestStreamSpec(
    name="serve/176x120/gop13x4",
    width=176,
    height=120,
    gop_size=13,
    pictures=52,
    bit_rate=2_000_000,
)


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _shm_entries() -> set[str]:
    return set(glob.glob("/dev/shm/*")) if os.path.isdir("/dev/shm") else set()


def _run_sessions(
    data: bytes,
    workers: int,
    sessions: int,
    fps: float | None,
    policy: DegradePolicy | None = None,
) -> tuple[DecodeService, dict]:
    svc = DecodeService(
        workers=workers,
        fps=fps,
        capacity=sessions,
        policy=policy,
        preroll_pictures=2,
    )
    for i in range(sessions):
        svc.submit(f"s{i}", data)
    t0 = perf_counter()
    report = svc.run()
    report["measured_wall_seconds"] = perf_counter() - t0
    return svc, report


def _aggregate_cdf(svc: DecodeService, points: int = 20) -> list[dict]:
    """Service-wide deadline-miss CDF across every session's pacer."""
    lateness: list[float] = []
    for sess in svc.sessions.values():
        lateness.extend(sess.pacer.lateness)
    n = len(lateness)
    if n == 0:
        return []
    ordered = sorted(lateness)
    hi = ordered[-1]
    knots = (
        [hi * i / max(1, points - 1) for i in range(points)] if hi > 0 else [0.0]
    )
    return [
        {
            "lateness_s": x,
            "fraction": sum(1 for s in ordered if s <= x + 1e-12) / n,
        }
        for x in knots
    ]


def bench_sessions_vs_workers(data: bytes) -> dict[str, object]:
    """For each worker count: max sessions under the miss budget."""
    out: dict[str, object] = {}
    for workers in WORKER_COUNTS:
        points = []
        sustained = 0
        sustained_cdf: list[dict] = []
        saturated_cdf: list[dict] = []
        for n in SESSION_COUNTS:
            svc, report = _run_sessions(data, workers, n, FPS)
            frac = report["deadline"]["miss_fraction"]
            points.append(
                {
                    "sessions": n,
                    "miss_fraction": frac,
                    "wall_seconds": report["measured_wall_seconds"],
                    "dropped_pictures": sum(
                        s["dropped_pictures"] for s in report["sessions"]
                    ),
                }
            )
            if frac <= MISS_BUDGET:
                sustained = n
                sustained_cdf = _aggregate_cdf(svc)
            else:
                saturated_cdf = _aggregate_cdf(svc)
                break
        out[str(workers)] = {
            "sustained_sessions": sustained,
            "miss_budget": MISS_BUDGET,
            "fps": FPS,
            "points": points,
            "miss_cdf_sustained": sustained_cdf,
            "miss_cdf_saturated": saturated_cdf,
        }
    return out


def bench_overload_2x(data: bytes, workers: int = 2) -> dict[str, object]:
    """Deliberate 2x overload: graceful degradation or bust.

    Measures the pool's unpaced aggregate throughput with ``N``
    sessions, then replays the same workload paced so each session
    demands twice its fair share of that throughput.  Gracefulness is
    concrete: zero failed sessions, zero leaked shm segments, every
    picture accounted (emitted + dropped == total), and the degrade
    machinery engaged.
    """
    sessions = max(2, workers)
    shm_before = _shm_entries()

    _, unpaced = _run_sessions(data, workers, sessions, fps=None)
    total_pictures = sum(s["pictures"] for s in unpaced["sessions"])
    pps = total_pictures / unpaced["measured_wall_seconds"]
    per_session_pps = pps / sessions
    overload_fps = 2.0 * per_session_pps

    policy = DegradePolicy(drop_b_after=2, skip_gop_after=4, recover_after=6)
    svc, report = _run_sessions(
        data, workers, sessions, fps=overload_fps, policy=policy
    )
    shm_leaked = sorted(_shm_entries() - shm_before)

    per_session = []
    accounted = True
    degrade_actions = 0
    for s in report["sessions"]:
        per_session.append(
            {
                "session": s["session"],
                "status": s["status"],
                "emitted": s["emitted"],
                "dropped_pictures": s["dropped_pictures"],
                "skipped_gops": s["skipped_gops"],
                "degrade": s["degrade"],
            }
        )
        accounted &= s["emitted"] + s["dropped_pictures"] == s["pictures"]
        degrade_actions += (
            s["degrade"]["drop_b_actions"] + s["degrade"]["skip_gop_actions"]
        )
    return {
        "workers": workers,
        "sessions": sessions,
        "unpaced_aggregate_pictures_per_sec": pps,
        "overload_fps_per_session": overload_fps,
        "policy": asdict(policy),
        "deadline": report["deadline"],
        "miss_cdf": _aggregate_cdf(svc),
        "wall_seconds": report["measured_wall_seconds"],
        "status_counts": report["status_counts"],
        "per_session": per_session,
        "degrade_actions_total": degrade_actions,
        "all_pictures_accounted": accounted,
        "failed_sessions": report["status_counts"].get("failed", 0),
        "shm_leaked": shm_leaked,
    }


def bench_trickplay_abr(data: bytes, workers: int = 2) -> dict[str, object]:
    """Trick-play traversal rates + the ABR rung ladder under overload.

    Two measurements share this section:

    * **trick rates** — wall time of the fast-forward / I-frame
      traversals against the linear decode of the same stream (the
      refs-only, strided-GOP selection is the whole point: serving 4x
      content speed must cost *less* than 1x decode, not more);
    * **ABR overload** — the 2x-overload replay with a rung ladder
      attached and ``switch_rung`` armed *below* drop-B, plus one
      mid-stream-join session riding the same pool.  Gracefulness now
      includes the ladder: the switch fires before any shed action,
      continuations complete, and every source picture is emitted,
      deliberately dropped, or handed to its continuation — nothing
      vanishes across the switch.
    """
    from repro.access import trick_decode
    from repro.mpeg2.decoder import SequenceDecoder
    from repro.mpeg2.index import build_index
    from repro.serve.rungs import build_rung_ladder

    sessions = max(2, workers)
    shm_before = _shm_entries()

    t0 = perf_counter()
    linear_pictures = len(SequenceDecoder(data).decode_all())
    linear_s = perf_counter() - t0
    trick_rates = []
    for mode in ("ff2", "ff4", "iframes"):
        t0 = perf_counter()
        pairs = trick_decode(data, mode)
        wall = perf_counter() - t0
        trick_rates.append(
            {
                "mode": mode,
                "pictures": len(pairs),
                "wall_seconds": wall,
                "speedup_vs_linear": (linear_s / wall) if wall > 0 else None,
            }
        )

    rungs = [r.data for r in build_rung_ladder(data, levels=1)]
    join_gop = len(build_index(data).gops) // 2

    _, unpaced = _run_sessions(data, workers, sessions, fps=None)
    total_pictures = sum(s["pictures"] for s in unpaced["sessions"])
    pps = total_pictures / unpaced["measured_wall_seconds"]
    overload_fps = 2.0 * pps / sessions

    policy = DegradePolicy(
        drop_b_after=2, skip_gop_after=4, recover_after=6,
        switch_rung_after=2,
    )
    # Capacity leaves room for every continuation (a rejected
    # continuation would void the switch and reinstate the shed).
    svc = DecodeService(
        workers=workers,
        fps=overload_fps,
        capacity=2 * sessions + 1,
        policy=policy,
        preroll_pictures=2,
    )
    for i in range(sessions):
        svc.submit(f"abr{i}", data, rungs=list(rungs))
    svc.submit("join", data, start_gop=join_gop)
    t0 = perf_counter()
    report = svc.run()
    wall_s = perf_counter() - t0
    shm_leaked = sorted(_shm_entries() - shm_before)

    by_name = {s["session"]: s for s in report["sessions"]}
    per_session = []
    accounted = True
    continuations_ok = True
    switch_total = 0
    switch_before_drop = True
    for s in report["sessions"]:
        switched = s.get("switched_pictures", 0)
        accounted &= (
            s["emitted"] + s["dropped_pictures"] + switched == s["pictures"]
        )
        actions = s["degrade"]["actions"]
        switch_total += s["degrade"]["switch_rung_actions"]
        if "switch_rung" in actions:
            drops = [
                i for i, a in enumerate(actions) if a in ("drop_b", "skip_gop")
            ]
            if drops and actions.index("switch_rung") > min(drops):
                switch_before_drop = False
        cont = s.get("continuation")
        if cont is not None:
            continuations_ok &= (
                cont in by_name and by_name[cont]["pictures"] == switched
            )
        per_session.append(
            {
                "session": s["session"],
                "status": s["status"],
                "emitted": s["emitted"],
                "dropped_pictures": s["dropped_pictures"],
                "switched_pictures": switched,
                "rung_level": s.get("rung_level", 0),
                "continuation": cont,
                "join_gop": s.get("join_gop", 0),
                "degrade": s["degrade"],
            }
        )
    return {
        "workers": workers,
        "sessions": sessions,
        "linear_pictures": linear_pictures,
        "linear_wall_seconds": linear_s,
        "trick_rates": trick_rates,
        "rung_levels": len(rungs),
        "rung_bytes": [len(r) for r in rungs],
        "join_gop": join_gop,
        "unpaced_aggregate_pictures_per_sec": pps,
        "overload_fps_per_session": overload_fps,
        "policy": asdict(policy),
        "deadline": report["deadline"],
        "wall_seconds": wall_s,
        "status_counts": report["status_counts"],
        "per_session": per_session,
        "switch_rung_total": switch_total,
        "switch_before_drop_b": switch_before_drop,
        "all_pictures_accounted": accounted,
        "continuations_consistent": continuations_ok,
        "failed_sessions": report["status_counts"].get("failed", 0),
        "shm_leaked": shm_leaked,
    }


def run(path: str = OUTPUT_PATH) -> dict[str, object]:
    data = build_stream(SERVE_SPEC)
    sessions_vs_workers = bench_sessions_vs_workers(data)
    overload = bench_overload_2x(data, workers=min(2, max(1, _cores() - 1)))
    trickplay = bench_trickplay_abr(data, workers=min(2, max(1, _cores() - 1)))
    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": _cores(),
        "spec": asdict(SERVE_SPEC),
        "stream_bytes": len(data),
        "fps": FPS,
        "miss_budget": MISS_BUDGET,
        "sessions_vs_workers": sessions_vs_workers,
        "overload_2x": overload,
        "trickplay_abr": trickplay,
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


def _format_report(report: dict) -> str:
    lines = [f"{'workers':<9}{'sustained sessions @30fps (<=5% miss)':<42}"]
    for w, row in report["sessions_vs_workers"].items():
        pts = "  ".join(
            f"{p['sessions']}s:{p['miss_fraction'] * 100:.1f}%"
            for p in row["points"]
        )
        lines.append(f"{w:<9}{row['sustained_sessions']:<8}  [{pts}]")
    ov = report["overload_2x"]
    lines.append(
        f"2x overload ({ov['sessions']} sessions @ "
        f"{ov['overload_fps_per_session']:.1f} fps on {ov['workers']} "
        f"workers): miss {ov['deadline']['miss_fraction'] * 100:.1f}%, "
        f"degrade actions {ov['degrade_actions_total']}, "
        f"failed {ov['failed_sessions']}, shm leaked {len(ov['shm_leaked'])}"
    )
    tp = report["trickplay_abr"]
    rates = "  ".join(
        f"{r['mode']}:{r['pictures']}pics,{r['speedup_vs_linear']:.1f}x"
        for r in tp["trick_rates"]
    )
    lines.append(f"trick rates vs linear ({tp['linear_pictures']} pics): [{rates}]")
    lines.append(
        f"ABR overload ({tp['sessions']} laddered sessions + 1 join @ "
        f"{tp['overload_fps_per_session']:.1f} fps): rung switches "
        f"{tp['switch_rung_total']} (before drop_b: "
        f"{tp['switch_before_drop_b']}), failed {tp['failed_sessions']}, "
        f"accounted {tp['all_pictures_accounted']}, "
        f"shm leaked {len(tp['shm_leaked'])}"
    )
    lines.append(
        f"cores available: {report['cpu_affinity']} "
        f"(sustained counts are capped by this)"
    )
    return "\n".join(lines)


@pytest.mark.perf
def test_perf_serve(record) -> None:
    """Perf gate: graceful degradation at 2x overload, zero leaks.

    Sustained session counts are machine physics and only recorded;
    the *graceful* part is asserted unconditionally: under 2x overload
    every session terminates (no crash, no hang), nothing leaks, the
    degradation policy visibly engages, and every picture is accounted
    as either emitted or deliberately dropped.
    """
    report = run()
    record(_format_report(report))
    ov = report["overload_2x"]
    assert ov["failed_sessions"] == 0, "2x overload crashed sessions"
    assert ov["shm_leaked"] == [], f"leaked shm: {ov['shm_leaked']}"
    assert ov["status_counts"].get("done", 0) == ov["sessions"]
    assert ov["all_pictures_accounted"]
    assert ov["degrade_actions_total"] > 0, (
        "2x overload did not engage the degradation policy"
    )
    # At least one paced session must be sustainable on any machine
    # that can decode the stream at all faster than real time.
    one_worker = report["sessions_vs_workers"][str(WORKER_COUNTS[0])]
    assert one_worker["points"], "sweep recorded no points"
    # -- trick-play / ABR gate ----------------------------------------
    tp = report["trickplay_abr"]
    assert tp["failed_sessions"] == 0, "ABR overload crashed sessions"
    assert tp["shm_leaked"] == [], f"leaked shm: {tp['shm_leaked']}"
    assert tp["status_counts"].get("done", 0) == len(tp["per_session"])
    assert tp["switch_rung_total"] >= 1, (
        "overload with a rung ladder never fired switch_rung"
    )
    assert tp["switch_before_drop_b"], (
        "a session shed pictures before trying its cheaper rung"
    )
    assert tp["all_pictures_accounted"], (
        "pictures vanished across the rung switch"
    )
    assert tp["continuations_consistent"], (
        "continuation picture counts disagree with the handover"
    )
    join = next(s for s in tp["per_session"] if s["session"] == "join")
    assert join["status"] == "done" and join["join_gop"] == tp["join_gop"]
    # Fast-forward must shrink the work, not just the output.
    ff4 = next(r for r in tp["trick_rates"] if r["mode"] == "ff4")
    assert ff4["pictures"] < tp["linear_pictures"]


if __name__ == "__main__":
    rep = run()
    print(_format_report(rep))
    print(f"wrote {OUTPUT_PATH}")
