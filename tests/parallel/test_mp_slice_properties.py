"""Property-based tests for the 2-D picture/slice queue and merger.

The scheduler logic of :mod:`repro.parallel.mp_slice` is pure
(:class:`PictureSliceQueue`, :class:`DisplayMerger`), so hypothesis
can drive it through random GOP structures and random slice-completion
orders and check the safety properties the real pipeline relies on:

* no deadlock — every generated schedule drains the queue;
* a picture never completes before its dependencies (never emitted
  early by the merger either);
* **improved mode never schedules a B-slice before both its reference
  pictures are complete** (the paper's correctness argument for
  rolling into B-runs);
* simple mode never schedules a slice before every earlier picture is
  complete (the stronger barrier the improved variant relaxes).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.mp_slice import DisplayMerger, PictureSliceQueue


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def gop_structures(draw):
    """A coding-order picture list with MPEG-2 reference structure.

    Returns ``(slice_counts, dependencies, types)``: picture types are
    drawn I/P/B with a leading I, dependencies follow the two-slot
    rule (P -> newest reference; B -> the two newest references), and
    slice counts include zero (a legal degenerate the queue must
    auto-settle).
    """
    n = draw(st.integers(min_value=1, max_value=12))
    types: list[str] = []
    for i in range(n):
        if i == 0:
            types.append("I")
            continue
        refs_so_far = sum(t in "IP" for t in types)
        allowed = "IPB" if refs_so_far >= 2 else "IP"
        types.append(draw(st.sampled_from(allowed)))
    deps: list[list[int]] = []
    ref_old: int | None = None
    ref_new: int | None = None
    for i, t in enumerate(types):
        if t == "I":
            deps.append([])
        elif t == "P":
            assert ref_new is not None
            deps.append([ref_new])
        else:
            assert ref_old is not None and ref_new is not None
            deps.append([ref_old, ref_new])
        if t in "IP":
            ref_old, ref_new = ref_new, i
    counts = [
        draw(st.integers(min_value=0, max_value=4)) for _ in range(n)
    ]
    return counts, deps, types


def drive_queue(queue, counts, data, max_steps=10_000):
    """Drive claims/completions in a hypothesis-chosen order.

    Returns the order in which pictures completed.  Raises if the
    schedule wedges (nothing claimable, nothing in flight, queue not
    done) — the deadlock property.
    """
    in_flight: list[tuple[int, int]] = []
    completion_order: list[int] = []
    for _ in range(max_steps):
        if queue.done and not in_flight:
            return completion_order
        claimed = queue.claim_all()
        in_flight.extend(claimed)
        if not in_flight:
            raise AssertionError(
                f"deadlock: queue not done, nothing claimable "
                f"(counts={counts})"
            )
        idx = data.draw(
            st.integers(min_value=0, max_value=len(in_flight) - 1),
            label="completion pick",
        )
        order, _sidx = in_flight.pop(idx)
        if queue.complete_slice(order):
            completion_order.append(order)
    raise AssertionError("schedule did not terminate")


# ----------------------------------------------------------------------
# queue properties
# ----------------------------------------------------------------------
class TestQueueProperties:
    @settings(max_examples=200, deadline=None)
    @given(structure=gop_structures(), data=st.data())
    @pytest.mark.parametrize("mode", ["simple", "improved"])
    def test_never_deadlocks_and_completes_every_picture(
        self, structure, data, mode
    ):
        counts, deps, _types = structure
        queue = PictureSliceQueue(counts, deps, mode)
        drive_queue(queue, counts, data)
        assert queue.done
        assert queue.pictures_complete == len(counts)

    @settings(max_examples=200, deadline=None)
    @given(structure=gop_structures(), data=st.data())
    def test_improved_never_schedules_before_references_published(
        self, structure, data
    ):
        counts, deps, types = structure
        queue = PictureSliceQueue(counts, deps, "improved")
        in_flight: list[tuple[int, int]] = []
        for _ in range(10_000):
            if queue.done and not in_flight:
                break
            for order, _sidx in queue.claim_all():
                # THE property: at claim time every reference of the
                # claimed picture — both of them for a B — is complete.
                for dep in deps[order]:
                    assert queue.is_complete(dep), (
                        f"{types[order]}-picture {order} scheduled "
                        f"before reference {dep} was published"
                    )
                in_flight.append((order, _sidx))
            if not in_flight:
                raise AssertionError("deadlock")
            idx = data.draw(
                st.integers(min_value=0, max_value=len(in_flight) - 1)
            )
            order, _sidx = in_flight.pop(idx)
            queue.complete_slice(order)
        assert queue.done

    @settings(max_examples=150, deadline=None)
    @given(structure=gop_structures(), data=st.data())
    def test_simple_never_schedules_past_an_incomplete_picture(
        self, structure, data
    ):
        counts, deps, _types = structure
        queue = PictureSliceQueue(counts, deps, "simple")
        in_flight: list[tuple[int, int]] = []
        for _ in range(10_000):
            if queue.done and not in_flight:
                break
            for order, _sidx in queue.claim_all():
                for earlier in range(order):
                    assert queue.is_complete(earlier), (
                        f"simple mode scheduled picture {order} before "
                        f"picture {earlier} completed"
                    )
                in_flight.append((order, _sidx))
            if not in_flight:
                raise AssertionError("deadlock")
            idx = data.draw(
                st.integers(min_value=0, max_value=len(in_flight) - 1)
            )
            order, _sidx = in_flight.pop(idx)
            queue.complete_slice(order)
        assert queue.done

    @settings(max_examples=100, deadline=None)
    @given(structure=gop_structures(), data=st.data())
    def test_completion_respects_dependencies(self, structure, data):
        counts, deps, _types = structure
        queue = PictureSliceQueue(counts, deps, "improved")
        completion_order = drive_queue(queue, counts, data)
        seen: set[int] = set()
        for order in completion_order:
            assert all(d in seen or counts[d] == 0 for d in deps[order])
            seen.add(order)

    def test_rejects_forward_dependencies(self):
        with pytest.raises(ValueError, match="earlier in coding order"):
            PictureSliceQueue([1, 1], [[1], []], "improved")
        with pytest.raises(ValueError, match="earlier in coding order"):
            PictureSliceQueue([1], [[0]], "improved")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            PictureSliceQueue([1], [[]], "bogus")

    def test_overcompletion_raises(self):
        queue = PictureSliceQueue([1], [[]], "simple")
        assert queue.claim() == (0, 0)
        assert queue.complete_slice(0) is True
        with pytest.raises(ValueError, match="no outstanding"):
            queue.complete_slice(0)

    def test_gating_callbacks_fire_in_pairs(self):
        gated: list[int] = []
        released: list[int] = []
        queue = PictureSliceQueue(
            [1, 1, 1],
            [[], [0], [0, 1]],
            "simple",
            on_gated=gated.append,
            on_released=released.append,
        )
        assert queue.claim_all() == [(0, 0)]
        assert gated == [1]  # frontier picture waiting on picture 0
        queue.complete_slice(0)
        assert queue.claim_all() == [(1, 0)]
        assert released == [1]
        queue.complete_slice(1)
        queue.claim_all()
        queue.complete_slice(2)
        assert queue.done
        assert set(gated) == set(released)


# ----------------------------------------------------------------------
# merger properties
# ----------------------------------------------------------------------
class TestMergerProperties:
    @settings(max_examples=200, deadline=None)
    @given(perm=st.permutations(list(range(10))))
    def test_random_push_order_emits_display_order(self, perm):
        merger = DisplayMerger(len(perm))
        emitted: list[int] = []
        for di in perm:
            out = merger.push(di, di)
            # Never emits an index before all smaller ones arrived:
            for item in out:
                assert item == len(emitted)
                emitted.append(item)
        assert emitted == sorted(perm)
        assert merger.done
        assert merger.held == 0

    @settings(max_examples=100, deadline=None)
    @given(perm=st.permutations(list(range(8))), cut=st.integers(0, 7))
    def test_prefix_never_emits_early(self, perm, cut):
        merger = DisplayMerger(len(perm))
        pushed = set()
        for di in perm[:cut]:
            out = merger.push(di, di)
            pushed.add(di)
            for item in out:
                # Everything emitted so far must be a closed prefix of
                # what was pushed — no picture escapes early.
                assert set(range(item + 1)) <= pushed
        assert merger.emitted + merger.held == cut

    def test_duplicate_push_raises(self):
        merger = DisplayMerger(3)
        merger.push(1, "a")
        with pytest.raises(ValueError, match="twice"):
            merger.push(1, "b")
        merger.push(0, "c")
        with pytest.raises(ValueError, match="twice"):
            merger.push(0, "d")

    def test_out_of_range_raises(self):
        merger = DisplayMerger(2)
        with pytest.raises(ValueError, match="out of range"):
            merger.push(2, "x")
        with pytest.raises(ValueError, match="out of range"):
            merger.push(-1, "x")

    def test_max_depth_tracks_reorder_buffer(self):
        merger = DisplayMerger(4)
        merger.push(3, 3)
        merger.push(2, 2)
        merger.push(1, 1)
        assert merger.max_depth == 3
        out = merger.push(0, 0)
        assert out == [0, 1, 2, 3]
        assert merger.done
