"""Property suite for StreamIndex random access + join-point selection.

Hypothesis drives the committed golden vectors (every GOP shape the
corpus pins: 1..4 GOPs, I-only through I/P/B, padded display sizes)
with arbitrary offsets and targets.  Four families of invariants:

* **offset round-trip** — ``locate_offset`` is total over the stream's
  byte range and lands inside the GOP/picture whose wire bytes cover
  the offset; ``gop_display_base`` is its exact display-order inverse.
* **seek monotonicity** — display targets map to monotonically
  non-decreasing GOPs, and a seek plan emits exactly the display tail
  ``[target, picture_count)``.
* **join-point admission** — ``join_point`` never selects a GOP before
  the requested position, always selects a *closed* GOP, and skips
  nothing: there is no closed GOP between the request and the answer.
* **ff(N) subset conservation** — fast-forward emits exactly the
  reference pictures of the strided GOP subset the stride predicts:
  nothing extra, nothing missing, every picture accounted for exactly
  once.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.access import FF_GOP_STRIDE, plan_trick
from repro.mpeg2.index import build_index

from tests.conftest import DIGEST_PATH, GoldenCache

with open(DIGEST_PATH) as _fh:
    _DOC = json.load(_fh)
VECTOR_NAMES = sorted(_DOC["streams"])

#: Module-level cache (Hypothesis re-enters the test body many times;
#: the function-scoped ``golden`` fixture pattern would rebuild it).
_CACHE = GoldenCache()
_INDEXES = {name: build_index(_CACHE.data(name)) for name in VECTOR_NAMES}

vector_names = st.sampled_from(VECTOR_NAMES)


def _display_table(index):
    """display index -> (gop, picture) over display order."""
    table = {}
    for gi, gop in enumerate(index.gops):
        base = index.gop_display_base(gi)
        for rank, pic in enumerate(
            sorted(gop.pictures, key=lambda p: p.temporal_reference)
        ):
            table[base + rank] = (gi, pic)
    return table


# ----------------------------------------------------------------------
# offset round-trip
# ----------------------------------------------------------------------
@given(name=vector_names, data=st.data())
@settings(max_examples=120, deadline=None)
def test_locate_offset_lands_in_covering_gop(name, data):
    index = _INDEXES[name]
    offset = data.draw(st.integers(0, index.total_bytes - 1))
    gop, pos = index.locate_offset(offset)
    g = index.gops[gop]
    assert 0 <= pos < len(g.pictures)
    # The resolved GOP is the last one starting at/before the offset
    # (bytes before the first GOP — the sequence prefix — resolve to
    # GOP 0 by decree).
    if offset >= index.gops[0].start_offset:
        assert g.start_offset <= offset
    if gop + 1 < len(index.gops):
        assert offset < index.gops[gop + 1].start_offset


@given(name=vector_names, data=st.data())
@settings(max_examples=60, deadline=None)
def test_locate_offset_refuses_outside_stream(name, data):
    index = _INDEXES[name]
    bad = data.draw(
        st.one_of(
            st.integers(min_value=-100, max_value=-1),
            st.integers(index.total_bytes, index.total_bytes + 100),
        )
    )
    try:
        index.locate_offset(bad)
    except Exception as exc:
        assert type(exc).__name__ == "StreamIndexError"
    else:
        raise AssertionError(f"offset {bad} resolved outside the stream")


@given(name=vector_names)
@settings(max_examples=20, deadline=None)
def test_display_base_partitions_display_order(name):
    index = _INDEXES[name]
    # Bases are the exact prefix sums of GOP picture counts: block g
    # owns [base_g, base_g + len) and the blocks tile [0, count).
    edge = 0
    for gi, gop in enumerate(index.gops):
        assert index.gop_display_base(gi) == edge
        edge += len(gop.pictures)
    assert edge == index.picture_count


# ----------------------------------------------------------------------
# seek monotonicity
# ----------------------------------------------------------------------
@given(name=vector_names, data=st.data())
@settings(max_examples=100, deadline=None)
def test_seek_gop_mapping_is_monotone(name, data):
    index = _INDEXES[name]
    count = index.picture_count
    a = data.draw(st.integers(0, count - 1))
    b = data.draw(st.integers(0, count - 1))
    lo, hi = sorted((a, b))
    g_lo = index.gop_for_display_index(lo)
    g_hi = index.gop_for_display_index(hi)
    assert g_lo <= g_hi
    # ...and the owning GOP really owns it.
    base = index.gop_display_base(g_lo)
    assert base <= lo < base + len(index.gops[g_lo].pictures)


@given(name=vector_names, data=st.data())
@settings(max_examples=100, deadline=None)
def test_seek_plan_emits_exact_display_tail(name, data):
    index = _INDEXES[name]
    target = data.draw(st.integers(0, index.picture_count - 1))
    plan = plan_trick(index, "seek", target=target)
    assert plan.display_indices(index) == list(
        range(target, index.picture_count)
    )


# ----------------------------------------------------------------------
# join-point admission
# ----------------------------------------------------------------------
@given(name=vector_names, data=st.data())
@settings(max_examples=100, deadline=None)
def test_join_point_never_before_position_and_closed(name, data):
    index = _INDEXES[name]
    position = data.draw(st.integers(0, len(index.gops) - 1))
    join = index.join_point(position)
    assert join >= position, "joined before the requested position"
    assert index.gops[join].closed_gop, "joined at an open GOP"
    # No closed GOP was skipped: the answer is the *earliest* legal one.
    assert all(
        not index.gops[g].closed_gop for g in range(position, join)
    )


# ----------------------------------------------------------------------
# ff(N) subset conservation
# ----------------------------------------------------------------------
@given(name=vector_names, rate=st.sampled_from(sorted(FF_GOP_STRIDE)))
@settings(max_examples=60, deadline=None)
def test_ff_emits_exactly_the_predicted_reference_subset(name, rate):
    index = _INDEXES[name]
    stride = FF_GOP_STRIDE[rate]
    table = _display_table(index)
    predicted = [
        d
        for d in sorted(table)
        if table[d][0] % stride == 0
        and table[d][1].picture_type.letter != "B"
    ]
    plan = plan_trick(index, f"ff{rate}")
    got = plan.display_indices(index)
    # Conservation: the emission list IS the predicted subset — every
    # display index exactly once, in display order, nothing dropped,
    # nothing invented.
    assert got == predicted, (name, rate)
    assert len(set(got)) == len(got)
