"""MPEG-2 video start codes and the fast scanner.

The scanner is the substrate of the paper's *scan process*: it walks an
encoded stream looking only for the byte-aligned ``00 00 01 xx``
patterns, classifying each hit (sequence / GOP / picture / slice), and
never touches the VLC-coded payload.  This is what makes the GOP-level
and slice-level task queues cheap to build — tasks are located by
scanning, not by decoding (Section 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The 24-bit byte-aligned prefix of every MPEG start code.
START_CODE_PREFIX = 0x000001

# Start-code values (ISO/IEC 13818-2 Table 6-1).
PICTURE_START_CODE = 0x00
SLICE_START_CODE_MIN = 0x01
SLICE_START_CODE_MAX = 0xAF
USER_DATA_START_CODE = 0xB2
SEQUENCE_HEADER_CODE = 0xB3
SEQUENCE_ERROR_CODE = 0xB4
EXTENSION_START_CODE = 0xB5
SEQUENCE_END_CODE = 0xB7
GROUP_START_CODE = 0xB8


def is_slice_start_code(code: int) -> bool:
    """True for the slice start-code value range ``0x01..0xAF``.

    The code value encodes ``slice_vertical_position`` (the macroblock
    row the slice starts on, 1-based), which is how the scan process
    can tell slices apart without decoding them.
    """
    return SLICE_START_CODE_MIN <= code <= SLICE_START_CODE_MAX


@dataclass(frozen=True)
class StartCodeHit:
    """One start code located in a byte buffer.

    Attributes
    ----------
    offset:
        Byte offset of the first ``0x00`` of the 4-byte start code.
    code:
        The start-code value byte (e.g. ``GROUP_START_CODE``).
    """

    offset: int
    code: int

    @property
    def payload_offset(self) -> int:
        """Byte offset of the first byte after the 4-byte start code."""
        return self.offset + 4

    @property
    def is_slice(self) -> bool:
        return is_slice_start_code(self.code)


def find_start_codes(
    data: bytes, start: int = 0, end: int | None = None
) -> list[StartCodeHit]:
    """Locate every start code in ``data[start:end]``.

    Runs at scan-process speed: a byte-level substring search with no
    bit-level decoding.  Overlapping zero runs (e.g. ``00 00 00 01``)
    are handled per the spec — any number of zero bytes may precede
    the ``00 00 01`` prefix and the *last* possible alignment wins.
    """
    if end is None:
        end = len(data)
    hits: list[StartCodeHit] = []
    i = start
    while True:
        j = data.find(b"\x00\x00\x01", i, end)
        if j < 0 or j + 3 >= end:
            return hits
        hits.append(StartCodeHit(offset=j, code=data[j + 3]))
        i = j + 4
