"""Real-hardware GOP-level parallel decoding with OS processes.

Everything else in :mod:`repro.parallel` runs the paper's scan/worker/
display architecture on the *simulated* SMP, because CPython threads
cannot show real speedup under the GIL.  This module escapes the GIL
the same way the paper escaped a single R4400: separate OS processes
(`multiprocessing`), one per worker, each decoding whole closed GOPs.

The paper's three roles map onto real primitives:

* **scan** — the parent builds a :class:`repro.mpeg2.index.StreamIndex`
  (start-code scan, no decoding) and splits it into per-GOP byte-range
  tasks (:func:`scan_gop_tasks` /
  :func:`repro.mpeg2.index.gop_byte_ranges`).
* **workers** — a :class:`multiprocessing.Pool`; each worker rebuilds a
  stand-alone substream (sequence-header prefix + GOP bytes), decodes
  it with the batched :class:`~repro.mpeg2.decoder.SequenceDecoder`,
  and writes the decoded planes straight into a shared-memory frame
  pool.  Only tiny metadata (temporal references + work counters)
  crosses the process boundary through pickling — pixel arrays never
  do.
* **display** — the parent merges completed GOPs back into display
  order through a reorder buffer (:func:`_merge_in_order`), reading
  frames out of the shared pool.

``workers=0`` runs the identical scan/decode/merge pipeline in-process
(no ``fork``, no shared memory) so functional tests are deterministic
on constrained CI; ``workers>=1`` is the real-silicon path measured by
``benchmarks/perf_parallel.py``.

Bit-exactness: closed GOPs carry no coded state across their
boundaries, so a GOP decoded from its substream is identical to the
same GOP decoded mid-stream; frames within a GOP are display-ordered
by ``decode_gop`` and closed GOPs appear in display order in the
stream.  The mp decoder therefore reproduces
``SequenceDecoder.decode_all`` bit-for-bit, counters included — pinned
by ``tests/parallel/test_mp_parity.py`` and the golden-vector suite.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import ENGINES, SequenceDecoder
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import (
    StreamIndex,
    build_index,
    sequence_prefix,
)


@dataclass(frozen=True)
class FrameLayout:
    """Byte layout of one decoded 4:2:0 frame slot in the shared pool.

    Slots are sized for *coded* planes (multiples of 16); display
    dimensions ride along so frames can be rebuilt exactly.
    """

    display_width: int
    display_height: int
    coded_width: int
    coded_height: int

    @classmethod
    def for_display(cls, width: int, height: int) -> "FrameLayout":
        blank = Frame.blank(width, height)
        return cls(
            display_width=width,
            display_height=height,
            coded_width=blank.coded_width,
            coded_height=blank.coded_height,
        )

    @property
    def y_bytes(self) -> int:
        return self.coded_width * self.coded_height

    @property
    def chroma_bytes(self) -> int:
        return (self.coded_width // 2) * (self.coded_height // 2)

    @property
    def slot_bytes(self) -> int:
        """Bytes per frame slot: Y + Cb + Cr, stored contiguously."""
        return self.y_bytes + 2 * self.chroma_bytes

    def slot_views(
        self, buf, slot: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``uint8`` plane views over slot ``slot`` of ``buf``."""
        base = slot * self.slot_bytes
        ch, cw = self.coded_height, self.coded_width
        y = np.ndarray((ch, cw), dtype=np.uint8, buffer=buf, offset=base)
        cb = np.ndarray(
            (ch // 2, cw // 2),
            dtype=np.uint8,
            buffer=buf,
            offset=base + self.y_bytes,
        )
        cr = np.ndarray(
            (ch // 2, cw // 2),
            dtype=np.uint8,
            buffer=buf,
            offset=base + self.y_bytes + self.chroma_bytes,
        )
        return y, cb, cr


class SharedFramePool:
    """A block of ``slots`` decoded-frame slots in POSIX shared memory.

    Workers write planes in place (:meth:`write_frame`); the display
    merger copies them out (:meth:`read_frame`).  The *owner* (parent
    process) creates and eventually unlinks the segment; workers attach
    by name and never unlink.
    """

    def __init__(
        self, layout: FrameLayout, slots: int, name: str | None = None
    ) -> None:
        self.layout = layout
        self.slots = slots
        if name is None:
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(layout.slot_bytes * slots, 1)
            )
            self._owner = True
        else:
            # Attach-only: pool workers share the parent's resource
            # tracker (they are forked/spawned from it), so the segment
            # is registered exactly once and unlinked exactly once by
            # the owning parent — no per-worker unregister needed.
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Allocated pool size (the Fig. 8 quantity, measured for real)."""
        return self.layout.slot_bytes * self.slots

    def write_frame(self, slot: int, frame: Frame) -> None:
        """Copy ``frame``'s planes into ``slot`` (worker side)."""
        y, cb, cr = self.layout.slot_views(self._shm.buf, slot)
        y[:, :] = frame.y
        cb[:, :] = frame.cb
        cr[:, :] = frame.cr
        del y, cb, cr  # release exported buffers before any close()

    def read_frame(self, slot: int, temporal_reference: int) -> Frame:
        """Rebuild the :class:`Frame` stored in ``slot`` (display side)."""
        y, cb, cr = self.layout.slot_views(self._shm.buf, slot)
        frame = Frame(
            y=y.copy(),
            cb=cb.copy(),
            cr=cr.copy(),
            display_width=self.layout.display_width,
            display_height=self.layout.display_height,
            temporal_reference=temporal_reference,
        )
        del y, cb, cr
        return frame

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()


# ----------------------------------------------------------------------
# scan: GOP byte ranges -> tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GopTask:
    """One unit of worker work: a GOP's byte range + its frame slots."""

    gop: int
    byte_start: int
    byte_end: int
    picture_count: int
    slot_base: int


@dataclass
class GopResult:
    """What a worker sends back: metadata only, never pixels."""

    gop: int
    slot_base: int
    temporal_references: list[int] = field(default_factory=list)
    counters: WorkCounters = field(default_factory=WorkCounters)


def scan_gop_tasks(index: StreamIndex) -> list[GopTask]:
    """The scan step: split the index into per-GOP tasks.

    Slot bases are assigned cumulatively so every decoded picture in
    the stream has a reserved slot in the shared pool — the mp
    equivalent of the paper's decoded-frame memory that Fig. 8 charts.
    """
    tasks: list[GopTask] = []
    slot = 0
    for gi, gop in enumerate(index.gops):
        tasks.append(
            GopTask(
                gop=gi,
                byte_start=gop.start_offset,
                byte_end=gop.end_offset,
                picture_count=len(gop.pictures),
                slot_base=slot,
            )
        )
        slot += len(gop.pictures)
    return tasks


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-worker-process state, populated by the pool initializer.
_WORKER: dict | None = None


def _init_worker(
    data: bytes,
    prefix: bytes,
    pool_name: str,
    layout: FrameLayout,
    engine: str,
    resilient: bool,
) -> None:
    """Pool initializer: attach the shared frame pool, keep the bytes."""
    global _WORKER
    _WORKER = {
        "data": data,
        "prefix": prefix,
        "pool": SharedFramePool(layout, slots=0, name=pool_name),
        "engine": engine,
        "resilient": resilient,
    }


def _decode_substream(
    substream: bytes, engine: str, resilient: bool
) -> tuple[list[Frame], WorkCounters]:
    """Decode a single-GOP substream to display-ordered frames."""
    counters = WorkCounters()
    frames = SequenceDecoder(
        substream, engine=engine, resilient=resilient
    ).decode_all(counters)
    return frames, counters


def _decode_gop_task(task: GopTask) -> GopResult:
    """Worker body: decode one GOP, park the frames in shared memory."""
    assert _WORKER is not None, "worker used before _init_worker"
    substream = (
        _WORKER["prefix"]
        + _WORKER["data"][task.byte_start : task.byte_end]
    )
    frames, counters = _decode_substream(
        substream, _WORKER["engine"], _WORKER["resilient"]
    )
    pool: SharedFramePool = _WORKER["pool"]
    refs: list[int] = []
    for j, frame in enumerate(frames):
        pool.write_frame(task.slot_base + j, frame)
        refs.append(frame.temporal_reference)
    return GopResult(
        gop=task.gop,
        slot_base=task.slot_base,
        temporal_references=refs,
        counters=counters,
    )


# ----------------------------------------------------------------------
# display side
# ----------------------------------------------------------------------
def _merge_in_order(
    results: Iterator[GopResult], gop_count: int
) -> Iterator[GopResult]:
    """Display-order merger: reorder GOP completions into stream order.

    Workers finish in load-dependent order; the display process must
    emit GOP 0's pictures before GOP 1's.  A reorder buffer holds
    early completions until their turn — the same role the paper's
    display process plays with its picture reorder queue.
    """
    pending: dict[int, GopResult] = {}
    next_gop = 0
    for result in results:
        pending[result.gop] = result
        while next_gop in pending:
            yield pending.pop(next_gop)
            next_gop += 1
    if next_gop != gop_count:
        missing = sorted(set(range(next_gop, gop_count)) - pending.keys())
        raise RuntimeError(f"worker pool lost GOP results: {missing}")


# ----------------------------------------------------------------------
# the decoder
# ----------------------------------------------------------------------
class MPGopDecoder:
    """GOP-level parallel decoder on real cores (paper Section 5.1).

    Parameters
    ----------
    data:
        The complete coded stream.
    index:
        Optional pre-built scan index (shared between the scan step and
        the workers, as in the paper).
    workers:
        ``0`` decodes in-process through the identical scan/merge
        pipeline (deterministic CI path, no processes).  ``>= 1``
        spawns that many OS worker processes; the count is capped at
        the number of GOPs.  ``None`` uses the available CPU count.
    engine:
        Decode engine for the workers (default ``"batched"``).
    resilient:
        Conceal corrupt slices instead of failing (worker-local,
        identical to the sequential decoder's behaviour).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        ``"fork"`` on Linux keeps the coded bytes copy-on-write).
    """

    def __init__(
        self,
        data: bytes,
        index: StreamIndex | None = None,
        workers: int | None = None,
        engine: str = "batched",
        resilient: bool = False,
        start_method: str | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.data = data
        self.index = index if index is not None else build_index(data)
        self.workers = workers
        self.engine = engine
        self.resilient = resilient
        self.start_method = start_method
        self.seq = self.index.sequence_header
        self.layout = FrameLayout.for_display(self.seq.width, self.seq.height)
        self.tasks = scan_gop_tasks(self.index)
        self.prefix = sequence_prefix(data, self.index)
        #: Shared-pool bytes the last parallel run allocated (Fig. 8
        #: counterpart on real silicon); 0 for the in-process path.
        self.last_pool_bytes = 0

    # ------------------------------------------------------------------
    def decode_all(self, counters: WorkCounters | None = None) -> list[Frame]:
        """Decode the whole stream to display-ordered frames.

        Bit-identical to ``SequenceDecoder(data).decode_all()`` —
        frames *and* aggregate work counters.
        """
        frames: list[Frame] = []
        for _gop, gop_frames in self.iter_gops(counters):
            frames.extend(gop_frames)
        return frames

    def iter_gops(
        self, counters: WorkCounters | None = None
    ) -> Iterator[tuple[int, list[Frame]]]:
        """Yield ``(gop_number, display_ordered_frames)`` in stream order."""
        if self.workers == 0:
            yield from self._iter_gops_inprocess(counters)
        else:
            yield from self._iter_gops_mp(counters)

    # ------------------------------------------------------------------
    def _iter_gops_inprocess(
        self, counters: WorkCounters | None
    ) -> Iterator[tuple[int, list[Frame]]]:
        """The workers=0 fallback: same pipeline, no processes."""
        self.last_pool_bytes = 0
        for task in self.tasks:
            substream = self.prefix + self.data[task.byte_start : task.byte_end]
            frames, local = _decode_substream(
                substream, self.engine, self.resilient
            )
            if counters is not None:
                counters.add(local)
            yield task.gop, frames

    def _iter_gops_mp(
        self, counters: WorkCounters | None
    ) -> Iterator[tuple[int, list[Frame]]]:
        workers = min(self.workers, len(self.tasks))
        ctx = multiprocessing.get_context(self.start_method)
        picture_count = self.index.picture_count
        frame_pool = SharedFramePool(self.layout, slots=picture_count)
        self.last_pool_bytes = frame_pool.nbytes
        tasks_by_gop = {t.gop: t for t in self.tasks}
        try:
            with ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(
                    self.data,
                    self.prefix,
                    frame_pool.name,
                    self.layout,
                    self.engine,
                    self.resilient,
                ),
            ) as pool:
                completions = pool.imap_unordered(
                    _decode_gop_task, self.tasks, chunksize=1
                )
                for result in _merge_in_order(completions, len(self.tasks)):
                    if counters is not None:
                        counters.add(result.counters)
                    task = tasks_by_gop[result.gop]
                    frames = [
                        frame_pool.read_frame(task.slot_base + j, ref)
                        for j, ref in enumerate(result.temporal_references)
                    ]
                    yield result.gop, frames
        finally:
            frame_pool.close()
            frame_pool.unlink()


def decode_parallel(
    data: bytes,
    workers: int | None = None,
    engine: str = "batched",
    resilient: bool = False,
    start_method: str | None = None,
) -> list[Frame]:
    """Convenience: parallel-decode a stream to display-ordered frames."""
    return MPGopDecoder(
        data,
        workers=workers,
        engine=engine,
        resilient=resilient,
        start_method=start_method,
    ).decode_all()
