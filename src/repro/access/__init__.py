"""Random access: seek, reverse, fast-forward, I-only trick modes.

The paper's GOP-grain parallelism rests on closed GOPs being
self-contained (Section 5.1): no coded state crosses a closed-GOP
boundary, so any closed GOP decodes bit-identically whether reached
linearly or jumped to.  This module turns that property into a
random-access subsystem: the scan index maps byte offsets and display
indices to GOP/picture coordinates (``StreamIndex.locate_offset`` /
``join_point``), and the trick modes below re-plan *which* pictures to
decode while reusing the scalar/batched engines and the multiprocess
GOP decoder unchanged.

Modes (:data:`TRICK_MODES`):

``seek``
    Enter at the closed GOP owning a target display index and decode
    linearly to the end, emitting frames at or after the target.
``reverse``
    Decode GOPs last-to-first and emit each GOP's frames in reverse
    display order — global reverse playback.
``ff2`` / ``ff4``
    N-times fast-forward: process every (N/2)-th GOP and decode only
    its reference pictures (I/P).  Skipping B pictures is exact because
    B's never enter the two-slot reference chain; the emitted I/P
    frames are bit-identical to the linear decode.
``iframes``
    I-only scrub: each GOP contributes exactly its intra picture,
    decoded with no references at all.

Every mode returns ``(display_index, frame)`` pairs whose frames must
be bit-identical to ``frames[display_index]`` of a full linear decode —
the golden-vector suite pins digests per mode for the whole corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpeg2.constants import PictureType
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import (
    GopIndex,
    StreamIndex,
    StreamIndexError,
    build_index,
    sequence_prefix,
)


class AccessError(Exception):
    """Raised when a trick-play request cannot be served exactly."""


class SeekError(AccessError):
    """Raised on seeks that have no exact entry point (open GOP, EOF)."""


TRICK_MODES = ("seek", "reverse", "ff2", "ff4", "iframes")

#: GOP stride per fast-forward rate: ffN plays reference pictures only,
#: visiting every (N/2)-th GOP, so ff2 sheds B's and ff4 additionally
#: skips alternate GOPs.
FF_GOP_STRIDE = {2: 1, 4: 2}


@dataclass(frozen=True)
class TrickPlan:
    """A trick-mode decode plan: which GOPs, which frames, what engine work.

    ``emissions`` lists ``(gop, display_rank)`` in emission order;
    the global display index of an emission is
    ``index.gop_display_base(gop) + display_rank``.  ``refs_only``
    marks plans whose GOPs only need their I/P chain decoded.
    """

    mode: str
    emissions: tuple[tuple[int, int], ...]
    refs_only: bool

    def gops(self) -> list[int]:
        """Distinct GOP numbers in first-emission order."""
        seen: list[int] = []
        for gop, _rank in self.emissions:
            if not seen or seen[-1] != gop:
                if gop in seen:
                    raise AccessError(f"plan revisits GOP {gop}")
                seen.append(gop)
        return seen

    def display_indices(self, index: StreamIndex) -> list[int]:
        return [
            index.gop_display_base(gop) + rank for gop, rank in self.emissions
        ]


def _require_closed(index: StreamIndex, gop: int, *, context: str) -> GopIndex:
    g = index.gops[gop]
    if not g.closed_gop:
        raise SeekError(
            f"{context}: GOP {gop} is open; exact random access needs a "
            "closed GOP (no coded state may cross the entry boundary)"
        )
    return g


def plan_trick(
    index: StreamIndex, mode: str, target: int = 0
) -> TrickPlan:
    """Build the emission plan for ``mode`` over ``index``.

    ``target`` is a display index (``seek``) and is ignored by the
    other modes.  Raises :class:`SeekError` for seeks past EOF or into
    an open GOP, :class:`AccessError` for unknown modes.
    """
    if mode == "seek":
        if not 0 <= target < index.picture_count:
            raise SeekError(
                f"seek target {target} past EOF "
                f"(stream has {index.picture_count} pictures)"
            )
        entry = index.gop_for_display_index(target)
        _require_closed(index, entry, context=f"seek to {target}")
        emissions: list[tuple[int, int]] = []
        for gop in range(entry, len(index.gops)):
            base = index.gop_display_base(gop)
            for rank in range(len(index.gops[gop].pictures)):
                if base + rank >= target:
                    emissions.append((gop, rank))
        return TrickPlan(mode=mode, emissions=tuple(emissions), refs_only=False)

    if mode == "reverse":
        emissions = []
        for gop in reversed(range(len(index.gops))):
            _require_closed(index, gop, context="reverse play")
            for rank in reversed(range(len(index.gops[gop].pictures))):
                emissions.append((gop, rank))
        return TrickPlan(mode=mode, emissions=tuple(emissions), refs_only=False)

    if mode in ("ff2", "ff4"):
        stride = FF_GOP_STRIDE[int(mode[2:])]
        emissions = []
        for gop in range(0, len(index.gops), stride):
            g = _require_closed(index, gop, context=mode)
            ranks = g.display_ranks()
            for pos in sorted(
                (p for p, pic in enumerate(g.pictures)
                 if pic.picture_type.is_reference),
                key=lambda p: ranks[p],
            ):
                emissions.append((gop, ranks[pos]))
        return TrickPlan(mode=mode, emissions=tuple(emissions), refs_only=True)

    if mode == "iframes":
        emissions = []
        for gop in range(len(index.gops)):
            g = _require_closed(index, gop, context="I-only scrub")
            for pos, pic in enumerate(g.pictures):
                if pic.picture_type is PictureType.I:
                    emissions.append((gop, g.display_ranks()[pos]))
                    break
            else:
                raise AccessError(f"GOP {gop} has no I picture")
        return TrickPlan(mode=mode, emissions=tuple(emissions), refs_only=True)

    raise AccessError(f"unknown trick mode {mode!r}; expected one of {TRICK_MODES}")


def _decode_gop_subset(
    dec: SequenceDecoder,
    gop: GopIndex,
    ranks: set[int],
    refs_only: bool,
    counters: WorkCounters | None,
) -> dict[int, Frame]:
    """Decode the frames of ``gop`` at display ranks ``ranks``.

    ``refs_only`` plans walk the I/P coding chain directly — B pictures
    are neither decoded nor charged, which is the whole point of the
    fast-forward modes — and stop as soon as every requested rank is
    in hand.  Full plans reuse the engine's GOP decode and subset it.
    """
    if not refs_only:
        frames = dec.decode_gop(gop, counters)
        return {rank: frames[rank] for rank in ranks}
    out: dict[int, Frame] = {}
    display_ranks = gop.display_ranks()
    fwd: Frame | None = None
    for pos, pic in enumerate(gop.pictures):
        if not pic.picture_type.is_reference:
            continue
        frame = dec.decode_picture(
            pic,
            fwd if pic.picture_type is PictureType.P else None,
            None,
            counters,
        )
        fwd = frame
        if display_ranks[pos] in ranks:
            out[display_ranks[pos]] = frame
            if len(out) == len(ranks):
                break
    missing = ranks - set(out)
    if missing:
        raise AccessError(f"GOP ranks {sorted(missing)} are not reference pictures")
    return out


def trick_decode(
    data: bytes,
    mode: str,
    target: int = 0,
    index: StreamIndex | None = None,
    engine: str = "batched",
    resilient: bool = False,
    counters: WorkCounters | None = None,
) -> list[tuple[int, Frame]]:
    """Run trick mode ``mode`` with an in-process engine.

    Returns ``(display_index, frame)`` pairs in emission order; each
    frame is bit-identical to the same display index of a linear
    decode.
    """
    idx = index if index is not None else build_index(data)
    plan = plan_trick(idx, mode, target)
    dec = SequenceDecoder(data, index=idx, resilient=resilient, engine=engine)
    per_gop: dict[int, dict[int, Frame]] = {}
    for gop in plan.gops():
        ranks = {rank for g, rank in plan.emissions if g == gop}
        per_gop[gop] = _decode_gop_subset(
            dec, idx.gops[gop], ranks, plan.refs_only, counters
        )
    return [
        (idx.gop_display_base(gop) + rank, per_gop[gop][rank])
        for gop, rank in plan.emissions
    ]


def trick_decode_mp(
    data: bytes,
    mode: str,
    target: int = 0,
    index: StreamIndex | None = None,
    workers: int = 0,
    resilient: bool = False,
    counters: WorkCounters | None = None,
) -> list[tuple[int, Frame]]:
    """Run trick mode ``mode`` through the multiprocess GOP decoder.

    The selected GOPs are spliced into a stand-alone substream
    (sequence prefix + GOP bytes, exactly the scan product GOP-level
    workers consume) and handed to :class:`~repro.parallel.mp.
    MPGopDecoder` unchanged; the emitted frames are then subset to the
    plan.  ``workers=0`` decodes in-process deterministically.
    """
    from repro.parallel.mp import MPGopDecoder

    idx = index if index is not None else build_index(data)
    plan = plan_trick(idx, mode, target)
    selected = sorted(plan.gops())
    parts = [sequence_prefix(data, idx)]
    parts.extend(
        data[idx.gops[g].start_offset : idx.gops[g].end_offset] for g in selected
    )
    substream = b"".join(parts)
    sub_index = build_index(substream)
    decoded: dict[int, list[Frame]] = {}
    mp_dec = MPGopDecoder(
        substream, index=sub_index, workers=workers, resilient=resilient
    )
    for sub_gop, frames in mp_dec.iter_gops(counters):
        decoded[selected[sub_gop]] = frames
    return [
        (idx.gop_display_base(gop) + rank, decoded[gop][rank])
        for gop, rank in plan.emissions
    ]


def default_seek_targets(index: StreamIndex) -> list[int]:
    """Deterministic seek targets used by the golden vectors and tests.

    Start, one-third, two-thirds, and last picture — deduplicated and
    filtered to targets whose entry GOP is closed (all corpus streams
    are fully closed, so nothing is filtered there).
    """
    n = index.picture_count
    targets = sorted({0, n // 3, (2 * n) // 3, n - 1})
    out = []
    for t in targets:
        if index.gops[index.gop_for_display_index(t)].closed_gop:
            out.append(t)
    return out
